package synth

import (
	"testing"

	"schemex/internal/graph"
)

func simpleSpec() *Spec {
	// The two-type specification of Example 7.1: type one has an 'a' link
	// to atomic with probability 0.9 and a 'b' link with 0.5; type two has
	// a 'c' link to type one with probability 0.8 and 'b' with 0.9.
	return &Spec{
		Name: "ex71",
		Types: []TypeSpec{
			{Name: "one", Count: 200, Links: []ProbLink{
				{Label: "a", Prob: 0.9},
				{Label: "b", Prob: 0.5},
			}},
			{Name: "two", Count: 100, Links: []ProbLink{
				{Label: "c", Target: "one", Prob: 0.8},
				{Label: "b", Prob: 0.9},
			}},
		},
		AtomicPool: 10,
		Seed:       1,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := simpleSpec()
	db1, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := simpleSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if db1.NumObjects() != db2.NumObjects() || db1.NumLinks() != db2.NumLinks() {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenerateCountsAndProbabilities(t *testing.T) {
	s := simpleSpec()
	db, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	complexCount := db.NumObjects() - db.NumAtomic()
	if complexCount != 300 {
		t.Fatalf("complex objects = %d, want 300", complexCount)
	}
	// Expected links: 200·(0.9+0.5) + 100·(0.8+0.9) = 280 + 170 = 450;
	// allow generous slack for the Bernoulli draws and dedup.
	links := db.NumLinks()
	if links < 380 || links > 520 {
		t.Fatalf("links = %d, want ≈450", links)
	}
	// Counting one realized 'a' link rate.
	aCount := 0
	db.Links(func(e graph.Edge) {
		if e.Label == "a" {
			aCount++
		}
	})
	if aCount < 150 || aCount > 200 {
		t.Fatalf("a-links = %d, want ≈180", aCount)
	}
}

func TestSpecPredicates(t *testing.T) {
	s := simpleSpec()
	if s.Bipartite() {
		t.Error("spec with a type target should not be bipartite")
	}
	if !s.Overlapping() {
		t.Error("both types share ->b[atomic]: should be overlapping")
	}
	bip := &Spec{Types: []TypeSpec{
		{Name: "x", Count: 1, Links: []ProbLink{{Label: "a", Prob: 1}}},
		{Name: "y", Count: 1, Links: []ProbLink{{Label: "b", Prob: 1}}},
	}}
	if !bip.Bipartite() || bip.Overlapping() {
		t.Error("disjoint atomic-only spec misclassified")
	}
	if got := s.Labels(); len(got) != 3 {
		t.Errorf("labels = %v, want [a b c]", got)
	}
	if s.Intended() != 2 {
		t.Error("intended types wrong")
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := &Spec{Types: []TypeSpec{{Name: "x", Count: 1, Links: []ProbLink{{Label: "a", Target: "nope", Prob: 1}}}}}
	if _, err := bad.Generate(); err == nil {
		t.Error("unknown target type should fail")
	}
	bad2 := &Spec{Types: []TypeSpec{{Name: "x", Count: 1, Links: []ProbLink{{Label: "a", Prob: 1.5}}}}}
	if _, err := bad2.Generate(); err == nil {
		t.Error("probability outside [0,1] should fail")
	}
}

func TestIntendedAssignment(t *testing.T) {
	s := simpleSpec()
	db, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ia := s.IntendedAssignment(db)
	if len(ia) != 300 {
		t.Fatalf("intended assignment covers %d objects, want 300", len(ia))
	}
	if ia[db.Lookup("one_0")] != 0 || ia[db.Lookup("two_3")] != 1 {
		t.Fatal("intended types mis-assigned")
	}
}

func TestPerturbCounts(t *testing.T) {
	s := simpleSpec()
	db, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	before := db.NumLinks()
	out := Perturb(db, 10, 25, 99)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := out.NumLinks(); got != before-10+25 {
		t.Fatalf("links after perturb = %d, want %d", got, before-10+25)
	}
	if db.NumLinks() != before {
		t.Fatal("Perturb mutated its input")
	}
	if out.NumObjects() != db.NumObjects() {
		t.Fatal("Perturb changed the object population")
	}
}

func TestPerturbPreservesBipartite(t *testing.T) {
	bip := &Spec{
		Types: []TypeSpec{
			{Name: "x", Count: 50, Links: []ProbLink{{Label: "a", Prob: 1}, {Label: "b", Prob: 0.5}}},
			{Name: "y", Count: 50, Links: []ProbLink{{Label: "c", Prob: 1}}},
		},
		AtomicPool: 5,
		Seed:       3,
	}
	db, err := bip.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !db.IsBipartite() {
		t.Fatal("setup: spec should generate bipartite data")
	}
	out := Perturb(db, 5, 20, 7)
	if !out.IsBipartite() {
		t.Fatal("perturbation must preserve bipartiteness (Table 1 keeps the flag)")
	}
}

func TestPerturbDeterministic(t *testing.T) {
	s := simpleSpec()
	db, _ := s.Generate()
	a := Perturb(db, 5, 5, 42)
	b := Perturb(db, 5, 5, 42)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("perturbation not deterministic")
	}
	differs := false
	a.Links(func(e graph.Edge) {
		bf, bt := b.Lookup(a.Name(e.From)), b.Lookup(a.Name(e.To))
		if !b.HasEdge(bf, bt, e.Label) {
			differs = true
		}
	})
	if differs {
		t.Fatal("same seed produced different perturbations")
	}
}

func TestPresetsBuild(t *testing.T) {
	for _, p := range Presets() {
		db, err := p.Build()
		if err != nil {
			t.Fatalf("DB%d: %v", p.DBNo, err)
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("DB%d: %v", p.DBNo, err)
		}
		// Object and link counts must be within 15% of the paper's.
		within := func(got, want int) bool {
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			return diff*100 <= want*15
		}
		if !within(db.NumObjects(), p.Paper.Objects) {
			t.Errorf("DB%d: objects %d too far from paper %d", p.DBNo, db.NumObjects(), p.Paper.Objects)
		}
		if !within(db.NumLinks(), p.Paper.Links) {
			t.Errorf("DB%d: links %d too far from paper %d", p.DBNo, db.NumLinks(), p.Paper.Links)
		}
		if p.Bipartite() != db.IsBipartite() {
			t.Errorf("DB%d: bipartite flag %v but data %v", p.DBNo, p.Bipartite(), db.IsBipartite())
		}
	}
}

func TestPresetFlagsMatchTable1(t *testing.T) {
	want := []struct {
		bip, ovl, per bool
		intended      int
	}{
		{true, false, false, 10},
		{true, false, true, 10},
		{true, true, false, 6},
		{true, true, true, 6},
		{false, false, false, 5},
		{false, false, true, 5},
		{false, true, false, 5},
		{false, true, true, 5},
	}
	ps := Presets()
	if len(ps) != 8 {
		t.Fatalf("presets = %d, want 8", len(ps))
	}
	for i, p := range ps {
		w := want[i]
		if p.Bipartite() != w.bip || p.Overlap() != w.ovl || p.Perturb != w.per || p.Intended() != w.intended {
			t.Errorf("DB%d flags = (%v,%v,%v,%d), want (%v,%v,%v,%d)", p.DBNo,
				p.Bipartite(), p.Overlap(), p.Perturb, p.Intended(), w.bip, w.ovl, w.per, w.intended)
		}
	}
}
