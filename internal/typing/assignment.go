package typing

import (
	"sort"

	"schemex/internal/bitset"
	"schemex/internal/graph"
)

// Assignment maps complex objects to the types they are assigned (a typing
// assignment τ in the sense of §2's deficit definition). Unlike an Extent it
// need not be a fixpoint: Stage 2 produces assignments whose objects may
// lack some of the typed links their types require.
type Assignment struct {
	Program *Program
	DB      *graph.DB
	Types   map[graph.ObjectID][]int
}

// NewAssignment returns an empty assignment over p and db.
func NewAssignment(p *Program, db *graph.DB) *Assignment {
	return &Assignment{Program: p, DB: db, Types: make(map[graph.ObjectID][]int)}
}

// Assign adds type t to object o (idempotent).
func (a *Assignment) Assign(o graph.ObjectID, t int) {
	for _, x := range a.Types[o] {
		if x == t {
			return
		}
	}
	a.Types[o] = append(a.Types[o], t)
	sort.Ints(a.Types[o])
}

// Reuse installs a known-valid row for o — sorted, deduplicated type
// indices, as a completed Assignment stores them — copying the slice so the
// source row stays independent. An empty row installs nothing, matching the
// classification loops, which never create empty entries. Warm recasting
// uses this to replay a parent assignment's rows for unaffected objects.
func (a *Assignment) Reuse(o graph.ObjectID, row []int) {
	if len(row) == 0 {
		return
	}
	a.Types[o] = append([]int(nil), row...)
}

// Has reports whether o is assigned type t.
func (a *Assignment) Has(o graph.ObjectID, t int) bool {
	for _, x := range a.Types[o] {
		if x == t {
			return true
		}
	}
	return false
}

// Of returns the types assigned to o.
func (a *Assignment) Of(o graph.ObjectID) []int { return a.Types[o] }

// Unclassified returns the complex objects with no assigned type, in ID
// order.
func (a *Assignment) Unclassified() []graph.ObjectID {
	var out []graph.ObjectID
	for _, o := range a.DB.ComplexObjects() {
		if len(a.Types[o]) == 0 {
			out = append(out, o)
		}
	}
	return out
}

// Membership materializes the assignment as per-type bitsets (the same shape
// as an Extent's Member field).
func (a *Assignment) Membership() []*bitset.Set {
	n := a.DB.NumObjects()
	member := make([]*bitset.Set, len(a.Program.Types))
	for i := range member {
		member[i] = bitset.New(n)
	}
	for o, ts := range a.Types {
		for _, t := range ts {
			member[t].Set(int(o))
		}
	}
	return member
}

// FromExtent converts a fixpoint extent into an assignment.
func FromExtent(e *Extent) *Assignment {
	a := NewAssignment(e.Program, e.DB)
	for ti := range e.Program.Types {
		e.Member[ti].ForEach(func(oi int) {
			a.Assign(graph.ObjectID(oi), ti)
		})
	}
	return a
}
