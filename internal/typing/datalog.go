package typing

import (
	"fmt"

	"schemex/internal/datalog"
	"schemex/internal/graph"
)

// This file bridges the typing language to the generic datalog engine:
// a typing program compiles to monadic datalog rules over link/3 and
// atomic/2, and a graph database encodes to the corresponding EDB. The
// specialized evaluator in eval.go is cross-checked against SolveGFP on the
// compiled form.

// predName returns the datalog predicate name for type index i.
func predName(i int) string { return fmt.Sprintf("t%d", i) }

// CompileDatalog translates p into an equivalent monadic datalog program.
// Each type becomes one rule in the restricted form of §2; fresh variables
// Y0, Y1, ... and Z0, Z1, ... are used per typed link, as the definition
// requires.
func CompileDatalog(p *Program) *datalog.Program {
	dp := &datalog.Program{}
	for ti, t := range p.Types {
		rule := datalog.Rule{
			Head: datalog.Atom{Pred: predName(ti), Args: []datalog.Term{datalog.V("X")}},
		}
		for li, l := range t.Links {
			y := datalog.V(fmt.Sprintf("Y%d", li))
			switch {
			case l.Dir == In:
				rule.Body = append(rule.Body,
					datalog.Atom{Pred: "link", Args: []datalog.Term{y, datalog.V("X"), datalog.C(l.Label)}},
					datalog.Atom{Pred: predName(l.Target), Args: []datalog.Term{y}},
				)
			case l.Target == AtomicTarget:
				var valueTerm datalog.Term
				if l.HasValue {
					valueTerm = datalog.C(l.Value)
				} else {
					valueTerm = datalog.V(fmt.Sprintf("Z%d", li))
				}
				rule.Body = append(rule.Body,
					datalog.Atom{Pred: "link", Args: []datalog.Term{datalog.V("X"), y, datalog.C(l.Label)}},
					datalog.Atom{Pred: "atomic", Args: []datalog.Term{y, valueTerm}},
				)
				if l.Sort != AnySort {
					rule.Body = append(rule.Body, datalog.Atom{
						Pred: "atomicsort",
						Args: []datalog.Term{y, datalog.C(l.Sort.String())},
					})
				}
			default:
				rule.Body = append(rule.Body,
					datalog.Atom{Pred: "link", Args: []datalog.Term{datalog.V("X"), y, datalog.C(l.Label)}},
					datalog.Atom{Pred: predName(l.Target), Args: []datalog.Term{y}},
				)
			}
		}
		if len(rule.Body) == 0 {
			// A type with no typed links holds of every complex object; the
			// paper's rule form has p ≥ 1, but Stage 2 can produce the empty
			// type. Encode membership via domain/1.
			rule.Body = append(rule.Body,
				datalog.Atom{Pred: "complex", Args: []datalog.Term{datalog.V("X")}})
		}
		dp.Rules = append(dp.Rules, rule)
	}
	return dp
}

// EncodeEDB translates a graph database into the datalog EDB over link/3,
// atomic/2 and complex/1, using object names as constants.
func EncodeEDB(db *graph.DB) *datalog.Database {
	edb := datalog.NewDatabase()
	edb.Ensure("link", 3)
	edb.Ensure("atomic", 2)
	edb.Ensure("atomicsort", 2)
	edb.Ensure("complex", 1)
	db.Links(func(e graph.Edge) {
		edb.Add("link", db.Name(e.From), db.Name(e.To), e.Label)
	})
	for _, o := range db.AtomicObjects() {
		v, _ := db.AtomicValue(o)
		edb.Add("atomic", db.Name(o), v.Text)
		edb.Add("atomicsort", db.Name(o), (SortConstraint(v.Sort) + 1).String())
	}
	for _, o := range db.ComplexObjects() {
		edb.Add("complex", db.Name(o))
	}
	return edb
}

// EvalGFPDatalog evaluates p on db by compiling to datalog and running the
// generic downward GFP solver. It returns an Extent equal to EvalGFP's (used
// for cross-checking; the specialized evaluator is much faster).
func EvalGFPDatalog(p *Program, db *graph.DB) (*Extent, error) {
	dp := CompileDatalog(p)
	edb := EncodeEDB(db)
	universe := make([]string, 0, db.NumObjects())
	for _, o := range db.ComplexObjects() {
		universe = append(universe, db.Name(o))
	}
	m, err := datalog.SolveGFP(dp, edb, universe)
	if err != nil {
		return nil, err
	}
	e := &Extent{Program: p, DB: db}
	for ti := range p.Types {
		set := newObjSet(db)
		rel := m.Relation(predName(ti))
		if rel != nil {
			for _, t := range rel.Tuples() {
				if id := db.Lookup(t[0]); id != graph.NoObject && !db.IsAtomic(id) {
					set.Set(int(id))
				}
			}
		}
		e.Member = append(e.Member, set)
	}
	return e, nil
}
