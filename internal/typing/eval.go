package typing

import (
	"sort"

	"schemex/internal/bitset"
	"schemex/internal/compile"
	"schemex/internal/graph"
	"schemex/internal/par"
)

// Extent is the greatest fixpoint of a typing program for a database: the
// set of objects in each type. Atomic objects belong to the implicit type₀
// and never to a program type.
type Extent struct {
	Program *Program
	DB      *graph.DB
	// Member[i] holds the objects in Program.Types[i], as a bitset over
	// ObjectIDs.
	Member []*bitset.Set
}

// Has reports whether object o is in type t.
func (e *Extent) Has(t int, o graph.ObjectID) bool {
	return e.Member[t].Test(int(o))
}

// Count returns |M(typeₜ)|.
func (e *Extent) Count(t int) int { return e.Member[t].Count() }

// Objects returns the objects in type t, in ID order.
func (e *Extent) Objects(t int) []graph.ObjectID {
	var out []graph.ObjectID
	e.Member[t].ForEach(func(i int) { out = append(out, graph.ObjectID(i)) })
	return out
}

// TypesOf returns the types containing object o, in index order.
func (e *Extent) TypesOf(o graph.ObjectID) []int {
	var out []int
	for t := range e.Member {
		if e.Member[t].Test(int(o)) {
			out = append(out, t)
		}
	}
	return out
}

// Equal reports whether two extents assign the same membership (they must be
// over the same program length and database size).
func (e *Extent) Equal(f *Extent) bool {
	if len(e.Member) != len(f.Member) {
		return false
	}
	for i := range e.Member {
		if !e.Member[i].Equal(f.Member[i]) {
			return false
		}
	}
	return true
}

// satisfies reports whether object o currently satisfies every typed link of
// type t under the membership in member.
func satisfies(db *graph.DB, t *Type, o graph.ObjectID, member []*bitset.Set) bool {
	for _, l := range t.Links {
		if !witnessed(db, l, o, member) {
			return false
		}
	}
	return true
}

// SortMatches reports whether an atomic value of sort s satisfies the
// constraint sc.
func SortMatches(sc SortConstraint, s graph.Sort) bool {
	return sc == AnySort || sc == SortConstraint(s)+1
}

// atomicWitness reports whether the atomic object to witnesses an
// AtomicTarget link, honoring its sort and value constraints.
func atomicWitness(db *graph.DB, to graph.ObjectID, l TypedLink) bool {
	v, ok := db.AtomicValue(to)
	if !ok || !SortMatches(l.Sort, v.Sort) {
		return false
	}
	return !l.HasValue || v.Text == l.Value
}

// witnessed reports whether typed link l of object o has a witness under the
// given membership.
func witnessed(db *graph.DB, l TypedLink, o graph.ObjectID, member []*bitset.Set) bool {
	if l.Dir == Out {
		for _, e := range db.Out(o) {
			if e.Label != l.Label {
				continue
			}
			if l.Target == AtomicTarget {
				if atomicWitness(db, e.To, l) {
					return true
				}
			} else if member[l.Target].Test(int(e.To)) {
				return true
			}
		}
		return false
	}
	for _, e := range db.In(o) {
		if e.Label == l.Label && member[l.Target].Test(int(e.From)) {
			return true
		}
	}
	return false
}

// EvalGFPNaive computes the greatest fixpoint by the straightforward method
// of §4: start with every complex object in every type (M_all) and apply the
// program until no change occurs. It is the reference implementation; EvalGFP
// computes the same result faster.
func EvalGFPNaive(p *Program, db *graph.DB) *Extent {
	n := db.NumObjects()
	member := make([]*bitset.Set, len(p.Types))
	for i := range member {
		member[i] = bitset.New(n)
	}
	for _, o := range db.ComplexObjects() {
		for i := range member {
			member[i].Set(int(o))
		}
	}
	for {
		changed := false
		next := make([]*bitset.Set, len(member))
		for i, t := range p.Types {
			next[i] = bitset.New(n)
			member[i].ForEach(func(oi int) {
				if satisfies(db, t, graph.ObjectID(oi), member) {
					next[i].Set(oi)
				} else {
					changed = true
				}
			})
		}
		member = next
		if !changed {
			break
		}
	}
	return &Extent{Program: p, DB: db, Member: member}
}

// EvalGFP computes the greatest fixpoint with support counting: each
// (object, type, link) triple tracks its number of witnesses, and removals
// propagate along edges, giving work proportional to edges × types touched
// rather than full re-evaluation rounds. This is one of the "many possible
// improvements" §4 alludes to for monadic programs.
func EvalGFP(p *Program, db *graph.DB) *Extent {
	return EvalGFPWorkers(p, db, 1)
}

// EvalGFPWorkers is EvalGFP with the degree-histogram build sharded by object
// and the initial support seeding sharded by type across the given number of
// workers (<= 1 runs the exact serial code path). Shards write disjoint
// state — each object owns its histogram rows, each type owns its member set,
// count table, and deferred removal list — and the greatest fixpoint is
// unique regardless of removal order, so the result is identical to serial.
// The propagation queue itself stays serial: its work is proportional to
// witnesses actually lost, which is small once seeding has done the bulk
// elimination.
func EvalGFPWorkers(p *Program, db *graph.DB, workers int) *Extent {
	ext, _ := EvalGFPCheck(p, db, workers, nil)
	return ext
}

// checkEvery is the checkpoint stride of the fixpoint evaluators: the
// cancellation check runs once per this many loop iterations, keeping the
// overhead unmeasurable while bounding the latency of a cancel to a few
// microseconds of extra work. Checks never alter any computed value — they
// only abort the whole evaluation — so determinism is unaffected.
const checkEvery = 1024

// EvalGFPCheck is EvalGFPWorkers with a cooperative cancellation checkpoint:
// check (nil means "never cancel") is consulted between phases, per seeding
// shard, and every checkEvery propagation-queue pops. On a non-nil check
// error the evaluation stops early, all worker goroutines are joined, and
// the error is returned with a nil extent.
//
// It compiles a throwaway snapshot of db and delegates to EvalGFPSnapCheck;
// callers evaluating several programs over one database should compile the
// snapshot once and call EvalGFPSnapCheck directly.
func EvalGFPCheck(p *Program, db *graph.DB, workers int, check func() error) (*Extent, error) {
	snap, err := compile.CompileCheck(db, workers, check)
	if err != nil {
		return nil, err
	}
	return EvalGFPSnapCheck(p, snap, workers, check)
}

// removal is one (type, object) membership retraction awaiting propagation.
type removal struct {
	t int
	o graph.ObjectID
}

// gfpRef is one (type, link) position whose target type a removal can
// affect, with the link's label pre-resolved to a snapshot label ID.
type gfpRef struct {
	t, li int
	lab   int32
	dir   Dir
}

// atomicWitnessSnap is atomicWitness against the compiled snapshot.
func atomicWitnessSnap(snap *compile.Snapshot, to graph.ObjectID, l TypedLink) bool {
	v, ok := snap.Value(to)
	if !ok || !SortMatches(l.Sort, v.Sort) {
		return false
	}
	return !l.HasValue || v.Text == l.Value
}

// EvalGFPSnapCheck computes the greatest fixpoint over a compiled snapshot:
// the snapshot supplies the label universe, the dense complex positions, and
// the degree histograms that seed the support counts, so the evaluator
// performs no per-call rebuild of any of them, and the propagation loop
// compares int32 label IDs instead of strings. Program labels are resolved
// against the snapshot's label table once, up front.
func EvalGFPSnapCheck(p *Program, snap *compile.Snapshot, workers int, check func() error) (*Extent, error) {
	// The whole evaluation — seeding the support counts and then the
	// fixpoint propagation — sweeps every object's edge lists repeatedly,
	// so its working set is the full snapshot. Pin it once up front: under
	// a memory budget smaller than the snapshot, per-access faulting here
	// would thrash the spill files (pins deliberately overcommit the
	// budget; a no-op on unbudgeted snapshots).
	defer snap.PinShards()()
	n := snap.NumObjects()
	nT := len(p.Types)
	member := make([]*bitset.Set, nT)
	for i := range member {
		// With many types × many objects this allocation sweep alone can
		// run for seconds; keep it cancellable.
		if check != nil && i%checkEvery == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		member[i] = bitset.New(n)
	}

	complexObjs := snap.Complex
	nC := len(complexObjs)
	pos := snap.Pos
	const nSorts = compile.NumSorts

	// counts[t] is indexed by linkIdx*nC + position(obj).
	counts := make([][]int32, nT)
	var queue []removal
	remove := func(t int, o graph.ObjectID) {
		if member[t].Test(int(o)) {
			member[t].Clear(int(o))
			queue = append(queue, removal{t, o})
		}
	}

	for ti, t := range p.Types {
		// Another many-types × many-objects allocation sweep (see the
		// member loop above): keep it cancellable, and check often — under
		// GC pressure a single table allocation can stall for milliseconds.
		if check != nil && ti%64 == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		counts[ti] = make([]int32, len(t.Links)*nC)
	}
	// Initially every complex object is in every type: build the membership
	// prototype once and copy it per type (word-wise, far cheaper than nT
	// scattered Set calls per object), checking between copies.
	proto := bitset.New(n)
	for _, o := range complexObjs {
		proto.Set(int(o))
	}
	for ti := range p.Types {
		if check != nil && ti%64 == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		member[ti].Or(proto)
	}
	// Seed the support counts sharded by type: shard ti touches only
	// member[ti], counts[ti], and its own deferred removal list, so shards
	// never race. The lists are drained into the queue afterwards; the
	// propagation result does not depend on that order (the GFP is unique).
	// Initially every complex object is in every type, so the initial
	// witness count of a typed link depends only on (direction, label,
	// atomic-vs-complex) — exactly the histograms the snapshot carries.
	initRemoved := make([][]graph.ObjectID, nT)
	if err := par.DoItemsErr(workers, nT, func(ti int) error {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		t := p.Types[ti]
		var local []graph.ObjectID
		rm := func(o graph.ObjectID) {
			if member[ti].Test(int(o)) {
				member[ti].Clear(int(o))
				local = append(local, o)
			}
		}
		for li, l := range t.Links {
			row := counts[ti][li*nC : (li+1)*nC]
			lid, known := snap.LabelID(l.Label)
			if !known {
				// Label absent from the data: nothing can witness it.
				for _, o := range complexObjs {
					rm(o)
				}
				continue
			}
			if l.Dir == Out && l.Target == AtomicTarget && l.HasValue {
				// Value-constrained links are rare; count by scanning each
				// object's edges directly.
				lid32 := int32(lid)
				for i, o := range complexObjs {
					var c int32
					to, lab := snap.Out(o)
					for k := range to {
						if lab[k] == lid32 && snap.IsAtomic(graph.ObjectID(to[k])) &&
							atomicWitnessSnap(snap, graph.ObjectID(to[k]), l) {
							c++
						}
					}
					row[i] = c
					if c == 0 {
						rm(o)
					}
				}
				continue
			}
			if l.Dir == Out && l.Target == AtomicTarget && l.Sort != AnySort {
				si := int(l.Sort) - 1
				col := lid*nSorts + si
				for i, o := range complexObjs {
					c := snap.OutAtomicSort.At(i, col)
					row[i] = c
					if c == 0 {
						rm(o)
					}
				}
				continue
			}
			var hist *compile.Hist
			switch {
			case l.Dir == Out && l.Target == AtomicTarget:
				hist = &snap.OutAtomic
			case l.Dir == Out:
				hist = &snap.OutComplex
			default:
				hist = &snap.InComplex
			}
			for i, o := range complexObjs {
				c := hist.At(i, lid)
				row[i] = c
				if c == 0 {
					rm(o)
				}
			}
		}
		initRemoved[ti] = local
		return nil
	}); err != nil {
		return nil, err
	}
	for ti, list := range initRemoved {
		for _, o := range list {
			queue = append(queue, removal{ti, o})
		}
	}

	// refs[j] lists the (type, link) positions whose target is type j, split
	// by direction, so a removal from type j can decrement exactly the
	// affected counts. Labels are pre-resolved to snapshot IDs (-1 for
	// labels absent from the data, which no edge can ever match).
	refs := make([][]gfpRef, nT)
	for ti, t := range p.Types {
		for li, l := range t.Links {
			if l.Target == AtomicTarget {
				continue // atomic membership never changes
			}
			lab := int32(-1)
			if lid, ok := snap.LabelID(l.Label); ok {
				lab = int32(lid)
			}
			refs[l.Target] = append(refs[l.Target], gfpRef{ti, li, lab, l.Dir})
		}
	}

	// Removal propagation. Multi-shard snapshots with a real worker pool
	// propagate by a shard-parallel frontier exchange; otherwise the classic
	// serial LIFO queue below drains the removals. The two orders differ,
	// but the greatest fixpoint is the unique largest fixpoint — removals
	// only ever confirm each other, never compete — so both reach the same
	// membership bit for bit (the shard property tests pin this).
	if par.Workers(workers) > 1 && snap.NumShards() > 1 {
		if err := propagateSharded(snap, member, counts, refs, queue, workers, check); err != nil {
			return nil, err
		}
		return &Extent{Program: p, DB: snap.DB(), Member: member}, nil
	}
	pops := 0
	for len(queue) > 0 {
		if check != nil {
			if pops++; pops%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, err
				}
			}
		}
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		x := rm.o
		for _, rf := range refs[rm.t] {
			if rf.dir == Out {
				// Some object o with an ℓ-edge to x may lose a witness for
				// →ℓ[rm.t].
				from, lab := snap.In(x)
				for k := range from {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(from[k])
					if !member[rf.t].Test(int(o)) {
						continue
					}
					c := &counts[rf.t][rf.li*nC+int(pos[o])]
					*c--
					if *c == 0 {
						remove(rf.t, o)
					}
				}
			} else {
				// Some object o with an ℓ-edge from x may lose a witness for
				// ←ℓ[rm.t].
				to, lab := snap.Out(x)
				for k := range to {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(to[k])
					if snap.IsAtomic(o) || !member[rf.t].Test(int(o)) {
						continue
					}
					c := &counts[rf.t][rf.li*nC+int(pos[o])]
					*c--
					if *c == 0 {
						remove(rf.t, o)
					}
				}
			}
		}
	}
	return &Extent{Program: p, DB: snap.DB(), Member: member}, nil
}

// propagateSharded drains the removal frontier by shard-parallel rounds.
// Each round has two phases with a barrier between them:
//
//   - Phase A fans out: frontier chunks walk their removals' snapshot edges
//     in parallel and translate each into an intent — "decrement the
//     support of (type t, link li) at object o" — bucketed by the shard
//     owning o. Phase A only reads membership, so chunks never race.
//   - Phase B applies: each shard's worker replays, alone, every intent
//     aimed at its shard — membership re-check (an intent whose object an
//     earlier intent this round already removed is dropped, exactly the
//     serial loop's member guard), decrement, and removal at zero. A worker
//     writes only the counts entries, membership bits, and next-frontier
//     list of its own shard's objects; shard ranges are whole multiples of
//     64 IDs, so not even a membership bitset word is shared.
//
// The next frontier is the concatenation of the per-shard removal lists,
// and the loop ends when a round removes nothing. Intra-round application
// order differs from the serial queue's, but the GFP is the unique largest
// fixpoint, so the final membership is bit-identical; counts are scratch
// state discarded with the call.
func propagateSharded(snap *compile.Snapshot, member []*bitset.Set, counts [][]int32,
	refs [][]gfpRef, frontier []removal, workers int, check func() error) error {
	type intent struct {
		t, li int
		o     graph.ObjectID
	}
	// Pin every shard for the propagation: each round's frontier exchange
	// touches arbitrary shards many times, and a memory budget smaller than
	// the working set would otherwise thrash faults mid-phase. Pins
	// deliberately overcommit the budget for the duration (a no-op on
	// unbudgeted snapshots).
	defer snap.PinShards()()
	nC := snap.NumComplex()
	pos := snap.Pos
	nSh := snap.NumShards()
	W := par.Workers(workers)
	for len(frontier) > 0 {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		nCh := W
		if nCh > len(frontier) {
			nCh = len(frontier)
		}
		per := (len(frontier) + nCh - 1) / nCh
		buckets := make([][][]intent, nCh)
		if err := par.DoItemsErr(workers, nCh, func(ci int) error {
			if check != nil {
				if err := check(); err != nil {
					return err
				}
			}
			lo, hi := ci*per, (ci+1)*per
			if lo > len(frontier) {
				lo = len(frontier)
			}
			if hi > len(frontier) {
				hi = len(frontier)
			}
			out := make([][]intent, nSh)
			for _, rm := range frontier[lo:hi] {
				x := rm.o
				for _, rf := range refs[rm.t] {
					if rf.dir == Out {
						from, lab := snap.In(x)
						for k := range from {
							if lab[k] != rf.lab {
								continue
							}
							o := graph.ObjectID(from[k])
							if !member[rf.t].Test(int(o)) {
								continue
							}
							si := snap.ShardOf(o)
							out[si] = append(out[si], intent{rf.t, rf.li, o})
						}
					} else {
						to, lab := snap.Out(x)
						for k := range to {
							if lab[k] != rf.lab {
								continue
							}
							o := graph.ObjectID(to[k])
							if snap.IsAtomic(o) || !member[rf.t].Test(int(o)) {
								continue
							}
							si := snap.ShardOf(o)
							out[si] = append(out[si], intent{rf.t, rf.li, o})
						}
					}
				}
			}
			buckets[ci] = out
			return nil
		}); err != nil {
			return err
		}
		next := make([][]removal, nSh)
		if err := par.DoItemsErr(workers, nSh, func(si int) error {
			if check != nil {
				if err := check(); err != nil {
					return err
				}
			}
			var local []removal
			for ci := range buckets {
				for _, it := range buckets[ci][si] {
					if !member[it.t].Test(int(it.o)) {
						continue
					}
					c := &counts[it.t][it.li*nC+int(pos[it.o])]
					*c--
					if *c == 0 {
						member[it.t].Clear(int(it.o))
						local = append(local, removal{it.t, it.o})
					}
				}
			}
			next[si] = local
			return nil
		}); err != nil {
			return err
		}
		frontier = frontier[:0]
		for _, l := range next {
			frontier = append(frontier, l...)
		}
	}
	return nil
}

// IsFixpoint reports whether the extent is a fixpoint of its program: every
// member satisfies its type and no non-member complex object is forced in.
// (The GFP is the unique largest fixpoint; this is used by tests.)
func (e *Extent) IsFixpoint() bool {
	for ti, t := range e.Program.Types {
		for _, o := range e.DB.ComplexObjects() {
			in := e.Member[ti].Test(int(o))
			if in != satisfies(e.DB, t, o, e.Member) {
				return false
			}
		}
	}
	return true
}

// HomeCandidates returns, for each complex object, the types whose
// definition it satisfies exactly — i.e. the object's local picture equals
// the type definition when link targets are resolved against this extent.
// (Used by recasting diagnostics.)
func (e *Extent) HomeCandidates(o graph.ObjectID) []int {
	local := LocalLinks(e.DB, o, func(x graph.ObjectID) []int { return e.TypesOf(x) })
	var out []int
	for ti, t := range e.Program.Types {
		if !e.Member[ti].Test(int(o)) {
			continue
		}
		if linksEqual(local, t.Links) {
			out = append(out, ti)
		}
	}
	return out
}

// LocalLinks computes the local picture of object o as a canonical set of
// typed links, given a classesOf function mapping each neighbour to the
// types it belongs to. An edge to a neighbour with several types produces
// one typed link per type.
func LocalLinks(db *graph.DB, o graph.ObjectID, classesOf func(graph.ObjectID) []int) []TypedLink {
	return LocalLinksSorted(db, o, classesOf, false)
}

// PictureOpts configure how local pictures and Q_D rules describe atomic
// attributes (the Remark 2.1 and value-predicate extensions).
type PictureOpts struct {
	// UseSorts annotates atomic targets with the value's sort.
	UseSorts bool
	// ValueLabels lists labels whose atomic values become part of the
	// picture, e.g. {"sex": true} turns an edge sex -> "Male" into
	// ->sex[0="Male"].
	ValueLabels map[string]bool
}

// LocalLinksSorted is LocalLinks with optional sort constraints (Remark
// 2.1).
func LocalLinksSorted(db *graph.DB, o graph.ObjectID, classesOf func(graph.ObjectID) []int, useSorts bool) []TypedLink {
	return LocalLinksOpts(db, o, classesOf, PictureOpts{UseSorts: useSorts})
}

// LocalLinksOpts computes the local picture with the given options. An edge
// to an atomic object contributes the plain ->ℓ[0] form plus the
// sort-constrained and value-constrained forms its options enable, so
// definitions at any precision can be matched by subset tests.
func LocalLinksOpts(db *graph.DB, o graph.ObjectID, classesOf func(graph.ObjectID) []int, opts PictureOpts) []TypedLink {
	var links []TypedLink
	for _, e := range db.Out(o) {
		if db.IsAtomic(e.To) {
			links = append(links, TypedLink{Dir: Out, Label: e.Label, Target: AtomicTarget})
			v, ok := db.AtomicValue(e.To)
			if !ok {
				continue
			}
			if opts.UseSorts {
				links = append(links, TypedLink{
					Dir: Out, Label: e.Label, Target: AtomicTarget,
					Sort: SortConstraint(v.Sort) + 1,
				})
			}
			if opts.ValueLabels[e.Label] {
				l := TypedLink{
					Dir: Out, Label: e.Label, Target: AtomicTarget,
					Value: v.Text, HasValue: true,
				}
				if opts.UseSorts {
					l.Sort = SortConstraint(v.Sort) + 1
				}
				links = append(links, l)
			}
			continue
		}
		for _, c := range classesOf(e.To) {
			links = append(links, TypedLink{Dir: Out, Label: e.Label, Target: c})
		}
	}
	for _, e := range db.In(o) {
		for _, c := range classesOf(e.From) {
			links = append(links, TypedLink{Dir: In, Label: e.Label, Target: c})
		}
	}
	tmp := Type{Links: links}
	tmp.Canonicalize()
	return tmp.Links
}

// LocalLinksSnapOpts is LocalLinksOpts over a compiled snapshot: edges are
// walked in CSR form and label strings come from the snapshot's interned
// table, so no per-edge map lookups or string allocations occur.
func LocalLinksSnapOpts(snap *compile.Snapshot, o graph.ObjectID, classesOf func(graph.ObjectID) []int, opts PictureOpts) []TypedLink {
	var links []TypedLink
	to, lab := snap.Out(o)
	for k := range to {
		t := graph.ObjectID(to[k])
		label := snap.Labels[lab[k]]
		if snap.IsAtomic(t) {
			links = append(links, TypedLink{Dir: Out, Label: label, Target: AtomicTarget})
			v, ok := snap.Value(t)
			if !ok {
				continue
			}
			if opts.UseSorts {
				links = append(links, TypedLink{
					Dir: Out, Label: label, Target: AtomicTarget,
					Sort: SortConstraint(v.Sort) + 1,
				})
			}
			if opts.ValueLabels[label] {
				l := TypedLink{
					Dir: Out, Label: label, Target: AtomicTarget,
					Value: v.Text, HasValue: true,
				}
				if opts.UseSorts {
					l.Sort = SortConstraint(v.Sort) + 1
				}
				links = append(links, l)
			}
			continue
		}
		for _, c := range classesOf(t) {
			links = append(links, TypedLink{Dir: Out, Label: label, Target: c})
		}
	}
	from, lab := snap.In(o)
	for k := range from {
		label := snap.Labels[lab[k]]
		for _, c := range classesOf(graph.ObjectID(from[k])) {
			links = append(links, TypedLink{Dir: In, Label: label, Target: c})
		}
	}
	tmp := Type{Links: links}
	tmp.Canonicalize()
	return tmp.Links
}

func linksEqual(a, b []TypedLink) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LinkSet is a set of typed links keyed for map use; it underlies the
// clustering hypercube.
type LinkSet map[TypedLink]bool

// NewLinkSet builds a LinkSet from a slice.
func NewLinkSet(links []TypedLink) LinkSet {
	s := make(LinkSet, len(links))
	for _, l := range links {
		s[l] = true
	}
	return s
}

// Slice returns the canonical sorted slice form.
func (s LinkSet) Slice() []TypedLink {
	out := make([]TypedLink, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
