package typing

import (
	"math/rand"
	"testing"

	"schemex/internal/compile"
)

// TestGFPShardParallelMatchesSerial pins the frontier-exchange propagation:
// the GFP over a multi-shard snapshot, at any worker count, is bit-identical
// to the serial single-shard evaluation on random databases and programs.
// Databases are sized well past the 64-object shard floor so an explicit
// shard count really produces multiple shards and the parallel path runs.
func TestGFPShardParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		db := randomDB(rng, 80+rng.Intn(240))
		p := randomProgram(rng, 1+rng.Intn(5))
		flat, err := compile.CompileShardsCheck(db, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EvalGFPSnapCheck(p, flat, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4} {
			snap, err := compile.CompileShardsCheck(db, shards, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if snap.NumShards() < 2 {
				t.Fatalf("trial %d: shards=%d produced %d shards", trial, shards, snap.NumShards())
			}
			for _, workers := range []int{1, 0, 8} {
				got, err := EvalGFPSnapCheck(p, snap, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d: shards=%d workers=%d extent differs from serial flat", trial, shards, workers)
				}
			}
		}
	}
}
