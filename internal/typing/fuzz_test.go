package typing

import (
	"strings"
	"testing"
)

// FuzzParse checks the arrow-notation parser never panics, and that every
// accepted program validates and survives a print/parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"type a = ->x[0]",
		"type a = <-x[b] & ->y[0]\ntype b = ->z[a]",
		"type a = ->x[0:int] & ->s[0=\"Male\"]",
		"a = ->x[0], ->y[0]",
		"type \"weird name\" = ->\"weird label\"[0]",
		"# comment\ntype a = ->x[0] // trailing",
		"type t = ->x[0:string=\"v\"]",
		// Adversarial shapes: giant names, wide conjunctions, recursion.
		"type " + strings.Repeat("n", 1<<10) + " = ->" + strings.Repeat("l", 1<<10) + "[0]",
		"type a = " + strings.Repeat("->x[a] & ", 200) + "->y[0]",
		"type a = ->x[b]\ntype b = ->x[a]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted program invalid: %v (input %q)", verr, src)
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("print/parse not stable:\n%s\nvs\n%s", rendered, p2.String())
		}
	})
}
