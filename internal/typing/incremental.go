package typing

import (
	"schemex/internal/bitset"
	"schemex/internal/compile"
	"schemex/internal/graph"
)

// DefaultMaxAffectedFrac is the fallback threshold of EvalGFPSnapIncr: when
// the delta's affected (type, object) pairs exceed this fraction of the full
// type × complex-object matrix, incremental maintenance has lost its edge
// over re-seeding every pair and the evaluator recomputes from scratch.
const DefaultMaxAffectedFrac = 0.25

// IncrOptions configure incremental greatest-fixpoint maintenance.
type IncrOptions struct {
	// Workers bounds parallelism of the full-recompute fallback (<= 0 means
	// one per CPU, 1 serial). The incremental path itself is serial: its
	// work is proportional to the delta's affected neighborhood, which is
	// small by construction whenever the path is taken at all.
	Workers int
	// Check is the cooperative cancellation checkpoint (nil: never cancel).
	Check func() error
	// MaxAffectedFrac overrides DefaultMaxAffectedFrac when positive.
	MaxAffectedFrac float64
}

// EvalGFPSnapIncr maintains a greatest fixpoint across a delta: given the
// parent database's fixpoint and a description of what changed — the type
// indices whose definitions differ from the parent program's, and the
// objects whose incident edges or atomic value changed — it computes the
// greatest fixpoint of p over snap by re-deriving only the delta's affected
// neighborhood, warm-starting everything else from the parent.
//
// Caller contract (what perfect.MinimalSnapWarm guarantees for Q_D over a
// compile.Apply-derived snapshot):
//   - len(p.Types) >= len(parent.Program.Types), and every type index not in
//     changedTypes and below the parent length has an identical definition in
//     both programs (indexes at or above the parent length are implicitly
//     changed);
//   - snap's object IDs extend the parent database's (IDs are append-only),
//     and every object outside touched has identical incident edges and
//     atomic status in both;
//   - changedTypes covers every type whose definition differs.
//
// Soundness. The affected set is the least set of (type, object) pairs
// containing every changed type's full row and every touched object's full
// column, closed under reverse dependency: if (t', x) is affected and some
// link of type t targets t' with label ℓ, then (t, o) is affected for every
// o adjacent to x over an ℓ-edge in the appropriate direction. By induction
// over the fixpoint iterations, membership of every unaffected pair is
// unchanged from the parent (its rule, its edges, and — by closure — every
// pair its satisfaction reads are all unchanged). Starting the support-
// counting descent from M₀ = parent membership ∪ affected pairs therefore
// starts above the new fixpoint and below M_all, and the descent converges
// to exactly the fixpoint EvalGFPSnapCheck computes — bit-identical extents.
// Support counts are needed only for affected pairs (a removal can only
// propagate into the affected set), so they are kept sparsely; all counts
// are computed against the frozen M₀ before the first removal is applied,
// which keeps removal propagation's single-decrement invariant.
//
// The second return value reports whether the incremental path was used;
// false means the evaluator fell back to EvalGFPSnapCheck (nil parent, or
// affected pairs exceeding MaxAffectedFrac of the type × object matrix).
// Either way the returned extent is the unique greatest fixpoint.
func EvalGFPSnapIncr(p *Program, snap *compile.Snapshot, parent *Extent, changedTypes []int, touched []graph.ObjectID, opts IncrOptions) (*Extent, bool, error) {
	if parent == nil {
		ext, err := EvalGFPSnapCheck(p, snap, opts.Workers, opts.Check)
		return ext, false, err
	}
	n := snap.NumObjects()
	nT := len(p.Types)
	nTOld := len(parent.Member)
	nC := snap.NumComplex()
	frac := opts.MaxAffectedFrac
	if frac <= 0 {
		frac = DefaultMaxAffectedFrac
	}
	budget := int(frac * float64(nT) * float64(nC))
	if budget < 1 {
		budget = 1
	}
	check := opts.Check
	fallback := func() (*Extent, bool, error) {
		ext, err := EvalGFPSnapCheck(p, snap, opts.Workers, opts.Check)
		return ext, false, err
	}

	changed := make([]bool, nT)
	for _, t := range changedTypes {
		changed[t] = true
	}
	for t := nTOld; t < nT; t++ {
		changed[t] = true
	}

	// refs[j] lists the (type, link) positions targeting type j, exactly as
	// in the full evaluator; the affected closure and removal propagation
	// both walk dependencies through it.
	type ref struct {
		t, li int
		lab   int32
		dir   Dir
	}
	refs := make([][]ref, nT)
	for ti, t := range p.Types {
		for li, l := range t.Links {
			if l.Target == AtomicTarget {
				continue
			}
			lab := int32(-1)
			if lid, ok := snap.LabelID(l.Label); ok {
				lab = int32(lid)
			}
			refs[l.Target] = append(refs[l.Target], ref{ti, li, lab, l.Dir})
		}
	}

	// Phase 1: affected-pair closure. aff maps (type, object) to its sparse
	// support-count row; presence alone marks the pair affected during this
	// phase (rows are filled in phase 3).
	type pair struct {
		t int
		o graph.ObjectID
	}
	key := func(t int, o graph.ObjectID) int64 { return int64(t)*int64(n) + int64(o) }
	aff := make(map[int64][]int32)
	var work []pair
	overBudget := false
	add := func(t int, o graph.ObjectID) {
		k := key(t, o)
		if _, ok := aff[k]; ok {
			return
		}
		aff[k] = nil
		work = append(work, pair{t, o})
		if len(aff) > budget {
			overBudget = true
		}
	}
	for t := 0; t < nT && !overBudget; t++ {
		if changed[t] {
			for _, o := range snap.Complex {
				add(t, o)
			}
		}
	}
	for _, o := range touched {
		if overBudget {
			break
		}
		if snap.Pos[o] < 0 {
			continue // atomic objects are never members; their sources are touched too
		}
		for t := 0; t < nT; t++ {
			add(t, o)
		}
	}
	steps := 0
	for len(work) > 0 && !overBudget {
		if check != nil {
			if steps++; steps%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		pr := work[len(work)-1]
		work = work[:len(work)-1]
		x := pr.o
		for _, rf := range refs[pr.t] {
			if rf.dir == Out {
				from, lab := snap.In(x)
				for k := range from {
					if lab[k] == rf.lab {
						add(rf.t, graph.ObjectID(from[k]))
					}
				}
			} else {
				to, lab := snap.Out(x)
				for k := range to {
					if lab[k] == rf.lab && !snap.IsAtomic(graph.ObjectID(to[k])) {
						add(rf.t, graph.ObjectID(to[k]))
					}
				}
			}
		}
	}
	if overBudget {
		return fallback()
	}

	// Phase 2: warm-start membership M₀ = parent extents (grown to the new
	// object universe) with every affected pair raised to candidate status.
	// Changed and new types get their full complex row from the closure, so
	// their stale or missing parent state never shows through.
	member := make([]*bitset.Set, nT)
	for t := range member {
		if t < nTOld {
			member[t] = parent.Member[t].Grown(n)
		} else {
			member[t] = bitset.New(n)
		}
	}
	for k := range aff {
		member[int(k/int64(n))].Set(int(k % int64(n)))
	}

	// Phase 3: support counts for affected pairs only, all computed against
	// the frozen M₀. No member bit may be cleared before every count is in
	// place: clearing early would make removal propagation decrement a
	// support twice (once by the recount, once by the queued removal).
	type removal struct {
		t int
		o graph.ObjectID
	}
	var queue []removal
	steps = 0
	for k := range aff {
		if check != nil {
			if steps++; steps%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		t := int(k / int64(n))
		o := graph.ObjectID(k % int64(n))
		links := p.Types[t].Links
		row := make([]int32, len(links))
		dead := false
		for li, l := range links {
			c := countWitnessesSnap(snap, l, o, member)
			row[li] = c
			if c == 0 {
				dead = true
			}
		}
		aff[k] = row
		if dead {
			queue = append(queue, removal{t, o})
		}
	}
	for _, rm := range queue {
		member[rm.t].Clear(int(rm.o))
	}

	// Phase 4: removal propagation, as in the full evaluator but with the
	// sparse count rows. Every pair a removal can reach is affected (that is
	// what the closure closed over), so a missing row would indicate a
	// violated caller contract; it is skipped defensively, which at worst
	// leaves the extent above the fixpoint of a mis-declared program.
	pops := 0
	for len(queue) > 0 {
		if check != nil {
			if pops++; pops%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		x := rm.o
		for _, rf := range refs[rm.t] {
			if rf.dir == Out {
				from, lab := snap.In(x)
				for k := range from {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(from[k])
					if !member[rf.t].Test(int(o)) {
						continue
					}
					row := aff[key(rf.t, o)]
					if row == nil {
						continue
					}
					row[rf.li]--
					if row[rf.li] == 0 {
						member[rf.t].Clear(int(o))
						queue = append(queue, removal{rf.t, o})
					}
				}
			} else {
				to, lab := snap.Out(x)
				for k := range to {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(to[k])
					if snap.IsAtomic(o) || !member[rf.t].Test(int(o)) {
						continue
					}
					row := aff[key(rf.t, o)]
					if row == nil {
						continue
					}
					row[rf.li]--
					if row[rf.li] == 0 {
						member[rf.t].Clear(int(o))
						queue = append(queue, removal{rf.t, o})
					}
				}
			}
		}
	}
	return &Extent{Program: p, DB: snap.DB(), Member: member}, true, nil
}

// countWitnessesSnap counts the witnesses of typed link l for object o under
// the given membership by scanning o's CSR edges. Unlike the histogram
// seeding of the full evaluator — which is valid only under the everything-
// is-a-member start — this respects arbitrary membership, as required by
// warm starts. An In link with an atomic target mirrors the full
// evaluator's histogram semantics (every in-edge counts; edge sources are
// complex by the data model).
func countWitnessesSnap(snap *compile.Snapshot, l TypedLink, o graph.ObjectID, member []*bitset.Set) int32 {
	lid, known := snap.LabelID(l.Label)
	if !known {
		return 0
	}
	lid32 := int32(lid)
	var c int32
	if l.Dir == Out {
		to, lab := snap.Out(o)
		for k := range to {
			if lab[k] != lid32 {
				continue
			}
			tgt := graph.ObjectID(to[k])
			if l.Target == AtomicTarget {
				if atomicWitnessSnap(snap, tgt, l) {
					c++
				}
			} else if member[l.Target].Test(int(tgt)) {
				c++
			}
		}
		return c
	}
	from, lab := snap.In(o)
	for k := range from {
		if lab[k] != lid32 {
			continue
		}
		if l.Target == AtomicTarget || member[l.Target].Test(int(from[k])) {
			c++
		}
	}
	return c
}
