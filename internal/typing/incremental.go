package typing

import (
	"schemex/internal/bitset"
	"schemex/internal/compile"
	"schemex/internal/graph"
)

// DefaultMaxAffectedFrac is the fallback threshold of EvalGFPSnapIncr: when
// the delta's affected (type, object) pairs — raised candidates plus
// materialized support rows — exceed this fraction of the full type ×
// complex-object matrix, incremental maintenance has lost its edge over
// re-seeding every pair and the evaluator recomputes from scratch.
const DefaultMaxAffectedFrac = 0.25

// IncrOptions configure incremental greatest-fixpoint maintenance.
type IncrOptions struct {
	// Workers bounds parallelism of the full-recompute fallback (<= 0 means
	// one per CPU, 1 serial). The incremental path itself is serial: its
	// work is proportional to the delta's affected neighborhood, which is
	// small by construction whenever the path is taken at all.
	Workers int
	// Check is the cooperative cancellation checkpoint (nil: never cancel).
	Check func() error
	// MaxAffectedFrac overrides DefaultMaxAffectedFrac when positive.
	MaxAffectedFrac float64
}

// EvalGFPSnapIncr maintains a greatest fixpoint across a delta: given the
// parent database's fixpoint and a description of what changed — the type
// indices whose definitions differ from the parent program's, and the
// objects whose incident edges or atomic value changed — it computes the
// greatest fixpoint of p over snap by re-deriving only the delta's affected
// neighborhood, warm-starting everything else from the parent.
//
// Caller contract (what perfect.MinimalSnapWarm guarantees for Q_D over a
// compile.Apply-derived snapshot):
//   - len(p.Types) >= len(parent.Member), and every type index not in
//     changedTypes and below the parent length has an identical definition in
//     both programs (indexes at or above the parent length are implicitly
//     changed);
//   - snap's object IDs extend the parent database's (IDs are append-only),
//     and every object outside touched has identical incident edges and
//     atomic status in both. A touched atomic covers value changes: the
//     evaluator itself widens the set with the atomic's complex in-neighbors,
//     whose sort- and value-constrained witness counts the change can shift.
//   - changedTypes covers every type whose definition differs.
//
// Soundness. The starting membership is M₀ = parent rows for unchanged
// types, and for each changed or new type the union of its stale parent row
// with its fresh candidate row (the complex objects passing the per-link
// witness filter: every link of the type has at least one edge of the right
// direction and label at the object, with atomic sort/value constraints
// checked exactly). On top of that, candidate raises propagate: starting
// from the fresh-minus-stale members of changed rows and the non-member
// pairs of touched columns whose added edges could witness a link the
// parent database did not witness at all, any pair adjacent to a raised
// pair through the program's reverse dependencies is raised too when it
// passes the witness filter, until closure. M₀ then contains the new
// fixpoint: a pair outside M₀ and the raises failed the parent fixpoint for
// lack of a witness, gained no own-edge witness the parent lacked, and is
// not adjacent to any raised pair — so a family of such pairs inside the
// new fixpoint has every link witnessed in the parent database by the
// parent fixpoint plus the family itself, a pre-fixpoint above the parent's
// greatest fixpoint there — a contradiction. The support-counting descent
// from M₀ therefore converges to exactly the fixpoint EvalGFPSnapCheck
// computes — bit-identical extents.
//
// Support-count rows are kept sparsely and fully lazily. Seed pairs —
// changed-row members, raised pairs, and parent members of touched columns —
// get an early-exit liveness check against M₀ (dead pairs join the removal
// queue); exact counts for any pair are computed only when a removal first
// reaches it. Removals clear their membership bit when popped, not when
// enqueued, so a row counted mid-descent includes exactly the
// queued-but-unpopped removals that will still decrement it — the
// single-decrement invariant holds with no frozen snapshot of the
// membership.
//
// The second return value reports whether the incremental path was used;
// false means the evaluator fell back to EvalGFPSnapCheck (nil parent, or
// raised-plus-materialized pairs exceeding MaxAffectedFrac of the type ×
// object matrix). Either way the returned extent is the unique greatest
// fixpoint. Result rows of types the delta left completely untouched alias
// the parent extent's rows; extents must be treated as immutable.
func EvalGFPSnapIncr(p *Program, snap *compile.Snapshot, parent *Extent, changedTypes []int, touched []graph.ObjectID, opts IncrOptions) (*Extent, bool, error) {
	if parent == nil {
		ext, err := EvalGFPSnapCheck(p, snap, opts.Workers, opts.Check)
		return ext, false, err
	}
	// Liveness probes and lazy count materialization chase edges from the
	// affected set across arbitrary shards, repeatedly; like the full
	// evaluator, pin the snapshot resident for the duration rather than
	// thrash a sub-snapshot memory budget (no-op when unbudgeted).
	defer snap.PinShards()()
	n := snap.NumObjects()
	nT := len(p.Types)
	nTOld := len(parent.Member)
	nC := snap.NumComplex()
	frac := opts.MaxAffectedFrac
	if frac <= 0 {
		frac = DefaultMaxAffectedFrac
	}
	budget := int(frac * float64(nT) * float64(nC))
	if budget < 1 {
		budget = 1
	}
	check := opts.Check
	fallback := func() (*Extent, bool, error) {
		ext, err := EvalGFPSnapCheck(p, snap, opts.Workers, opts.Check)
		return ext, false, err
	}

	changed := make([]bool, nT)
	for _, t := range changedTypes {
		if t < 0 || t >= nT {
			return fallback()
		}
		changed[t] = true
	}
	for t := nTOld; t < nT; t++ {
		changed[t] = true
	}

	// Pre-resolve program labels once; -1 marks labels absent from the data,
	// which no edge can witness.
	labelOf := make([][]int32, nT)
	for ti, t := range p.Types {
		row := make([]int32, len(t.Links))
		for li, l := range t.Links {
			row[li] = -1
			if lid, ok := snap.LabelID(l.Label); ok {
				row[li] = int32(lid)
			}
		}
		labelOf[ti] = row
	}

	// refs[j] lists the (type, link) positions targeting type j, exactly as
	// in the full evaluator; raise and removal propagation both walk
	// dependencies through it.
	type ref struct {
		t, li int
		lab   int32
		dir   Dir
	}
	refs := make([][]ref, nT)
	for ti, t := range p.Types {
		for li, l := range t.Links {
			if l.Target == AtomicTarget {
				continue
			}
			refs[l.Target] = append(refs[l.Target], ref{ti, li, labelOf[ti][li], l.Dir})
		}
	}

	// candidate reports whether object o passes type t's per-link witness
	// filter: a necessary condition for membership that ignores complex
	// target membership (label and direction presence; atomic constraints
	// are membership-independent and checked exactly).
	candidate := func(t int, o graph.ObjectID) bool {
		links := p.Types[t].Links
		labs := labelOf[t]
		for li, l := range links {
			lab := labs[li]
			if lab < 0 {
				return false
			}
			found := false
			if l.Dir == Out {
				to, elab := snap.Out(o)
				for k := range to {
					if elab[k] != lab {
						continue
					}
					tgt := graph.ObjectID(to[k])
					if l.Target == AtomicTarget {
						if atomicWitnessSnap(snap, tgt, l) {
							found = true
							break
						}
					} else if !snap.IsAtomic(tgt) {
						found = true
						break
					}
				}
			} else {
				from, elab := snap.In(o)
				for k := range from {
					if elab[k] == lab {
						found = true
						break
					}
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	// Widen touched with the complex in-neighbors of touched atomics: a
	// value or sort change at an atomic shifts the witness counts of its
	// sources without touching their own edge lists.
	effTouched := touched
	for _, o := range touched {
		if int(o) >= n || snap.Pos[o] >= 0 {
			continue
		}
		from, _ := snap.In(o)
		for k := range from {
			effTouched = append(effTouched, graph.ObjectID(from[k]))
		}
	}

	// Membership rows: unchanged types warm-start from the parent row —
	// aliased when the object universe kept its size, zero-extended
	// otherwise — and copy on first write. Changed and new types get the
	// union of their fresh candidate row and (when one exists) their stale
	// parent row; the stale leftovers are queued as removals below.
	member := make([]*bitset.Set, nT)
	private := make([]bool, nT) // row is owned, not aliasing the parent
	own := func(t int) {
		if !private[t] {
			member[t] = member[t].Clone()
			private[t] = true
		}
	}
	cost := 0 // raised + materialized pairs, checked against budget

	type pr struct {
		t int
		o graph.ObjectID
	}
	key := func(t int, o graph.ObjectID) int64 { return int64(t)*int64(n) + int64(o) }
	rows := make(map[int64][]int32)  // sparse support-count rows
	queuedRm := make(map[int64]bool) // removal enqueued (bits clear on pop)
	var queue []pr                   // pending removals
	var raiseWork []pr               // raised pairs to propagate from
	var needRow []pr                 // pairs whose row phase B materializes
	steps := 0
	for t := 0; t < nT; t++ {
		if check != nil {
			if steps++; steps%64 == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		if !changed[t] {
			if parent.Member[t].Len() == n {
				member[t] = parent.Member[t]
			} else {
				member[t] = parent.Member[t].Grown(n)
				private[t] = true
			}
			continue
		}
		row := bitset.New(n)
		private[t] = true
		for _, o := range snap.Complex {
			if candidate(t, o) {
				row.Set(int(o))
				cost++
				needRow = append(needRow, pr{t, o})
				if t >= nTOld || int(o) >= parent.Member[t].Len() || !parent.Member[t].Test(int(o)) {
					raiseWork = append(raiseWork, pr{t, o})
				}
			}
		}
		if t < nTOld {
			// Stale parent members the fresh filter rejected are dead, but
			// they start as members so that rows counted against M₀ see
			// them; popping the queued removal clears and propagates.
			parent.Member[t].ForEach(func(oi int) {
				if oi < n && !row.Test(oi) {
					row.Set(oi)
					k := key(t, graph.ObjectID(oi))
					queuedRm[k] = true
					queue = append(queue, pr{t, graph.ObjectID(oi)})
				}
			})
		}
		member[t] = row
		if cost > budget {
			return fallback()
		}
	}

	// Touched columns: parent members get a recount (their own edges
	// changed); non-members are raised only when the column's own edge
	// changes could have created a witness the parent database lacked — an
	// added edge (new in the child, or targeting a touched atomic whose
	// value may differ) witnessing a link that had no parent witness at
	// all. A pair whose missing witnesses are all complex-membership
	// misses is reached by raise propagation from the pairs that join, so
	// suppressing its seed keeps the closure proportional to the delta
	// rather than the touched column's candidate fan-out. Soundness is the
	// M₀ argument again: a family of non-raised pairs inside the new
	// fixpoint, none with a new own-edge witness and none adjacent to a
	// raised pair, has every link witnessed in the parent database by the
	// parent fixpoint plus the family itself — a pre-fixpoint above the
	// parent's greatest fixpoint there.
	pdb := parent.DB
	touchedAtom := make(map[graph.ObjectID]bool)
	for _, o := range touched {
		if int(o) < n && snap.Pos[o] < 0 {
			touchedAtom[o] = true
		}
	}
	// parentWitness reports whether the parent database already held a
	// witness for link l at object o under the parent fixpoint. For a new
	// object the parent edge lists are empty and it reports false.
	parentWitness := func(l TypedLink, o graph.ObjectID) bool {
		if l.Dir == Out {
			for _, e := range pdb.Out(o) {
				if e.Label != l.Label {
					continue
				}
				if l.Target == AtomicTarget {
					if v, ok := pdb.AtomicValue(e.To); ok && SortMatches(l.Sort, v.Sort) && (!l.HasValue || v.Text == l.Value) {
						return true
					}
				} else if l.Target < len(parent.Member) && int(e.To) < parent.Member[l.Target].Len() && parent.Member[l.Target].Test(int(e.To)) {
					return true
				}
			}
			return false
		}
		for _, e := range pdb.In(o) {
			if e.Label != l.Label {
				continue
			}
			if l.Target == AtomicTarget {
				return true
			}
			if l.Target < len(parent.Member) && int(e.From) < parent.Member[l.Target].Len() && parent.Member[l.Target].Test(int(e.From)) {
				return true
			}
		}
		return false
	}
	type aedge struct {
		lab int32
		tgt graph.ObjectID
	}
	var addedOut, addedIn []aedge
	// raiseNeeded reports whether some link of t gains a possible witness
	// from o's added edges that the parent lacked entirely.
	raiseNeeded := func(t int, o graph.ObjectID) bool {
		links := p.Types[t].Links
		labs := labelOf[t]
		for li, l := range links {
			lab := labs[li]
			if lab < 0 {
				continue
			}
			added := false
			if l.Dir == Out {
				for _, e := range addedOut {
					if e.lab != lab {
						continue
					}
					if l.Target == AtomicTarget {
						if atomicWitnessSnap(snap, e.tgt, l) {
							added = true
							break
						}
					} else if !snap.IsAtomic(e.tgt) {
						added = true
						break
					}
				}
			} else {
				for _, e := range addedIn {
					if e.lab == lab {
						added = true
						break
					}
				}
			}
			if added && !parentWitness(l, o) {
				return true
			}
		}
		return false
	}
	seen := make(map[graph.ObjectID]bool, len(effTouched))
	for _, o := range effTouched {
		if int(o) >= n || snap.Pos[o] < 0 || seen[o] {
			continue // atomic objects are never members
		}
		seen[o] = true
		pKeys := make(map[int64]bool)
		for _, e := range pdb.Out(o) {
			if lid, ok := snap.LabelID(e.Label); ok {
				pKeys[int64(lid)<<32|int64(e.To)] = true
			}
		}
		addedOut = addedOut[:0]
		to, elab := snap.Out(o)
		for k := range to {
			tgt := graph.ObjectID(to[k])
			if touchedAtom[tgt] || !pKeys[int64(elab[k])<<32|int64(tgt)] {
				addedOut = append(addedOut, aedge{elab[k], tgt})
			}
		}
		clear(pKeys)
		for _, e := range pdb.In(o) {
			if lid, ok := snap.LabelID(e.Label); ok {
				pKeys[int64(lid)<<32|int64(e.From)] = true
			}
		}
		addedIn = addedIn[:0]
		from, flab := snap.In(o)
		for k := range from {
			src := graph.ObjectID(from[k])
			if !pKeys[int64(flab[k])<<32|int64(src)] {
				addedIn = append(addedIn, aedge{flab[k], src})
			}
		}
		for t := 0; t < nT; t++ {
			if changed[t] {
				continue // already handled by the fresh row
			}
			if member[t].Test(int(o)) {
				cost++
				needRow = append(needRow, pr{t, o})
			} else if raiseNeeded(t, o) && candidate(t, o) {
				own(t)
				member[t].Set(int(o))
				cost++
				needRow = append(needRow, pr{t, o})
				raiseWork = append(raiseWork, pr{t, o})
			}
		}
		if cost > budget {
			return fallback()
		}
	}

	// Raise closure: a pair adjacent to a raised pair may have gained its
	// missing witness; raise it too when it passes the filter. Propagation
	// runs only through pairs the parent lacked — anything already a parent
	// member adds no new witness.
	for len(raiseWork) > 0 {
		if check != nil {
			if steps++; steps%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		rp := raiseWork[len(raiseWork)-1]
		raiseWork = raiseWork[:len(raiseWork)-1]
		x := rp.o
		for _, rf := range refs[rp.t] {
			if rf.lab < 0 {
				continue
			}
			if rf.dir == Out {
				from, lab := snap.In(x)
				for k := range from {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(from[k])
					if member[rf.t].Test(int(o)) || !candidate(rf.t, o) {
						continue
					}
					own(rf.t)
					member[rf.t].Set(int(o))
					cost++
					needRow = append(needRow, pr{rf.t, o})
					raiseWork = append(raiseWork, pr{rf.t, o})
				}
			} else {
				to, lab := snap.Out(x)
				for k := range to {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(to[k])
					if snap.IsAtomic(o) || member[rf.t].Test(int(o)) || !candidate(rf.t, o) {
						continue
					}
					own(rf.t)
					member[rf.t].Set(int(o))
					cost++
					needRow = append(needRow, pr{rf.t, o})
					raiseWork = append(raiseWork, pr{rf.t, o})
				}
			}
		}
		if cost > budget {
			return fallback()
		}
	}

	// Verify the seed pairs against the now-frozen M₀ and queue the dead
	// ones. Verification is an early-exit witness-existence check per link —
	// no support row is stored; a pair's row is counted lazily by the first
	// removal that reaches it, so pairs no removal ever contacts (the vast
	// majority after a small delta) never pay for exact counts.
	alive := func(t int, o graph.ObjectID) bool {
		links := p.Types[t].Links
		labs := labelOf[t]
		for li, l := range links {
			lab := labs[li]
			if lab < 0 {
				return false
			}
			found := false
			if l.Dir == Out {
				to, elab := snap.Out(o)
				for k := range to {
					if elab[k] != lab {
						continue
					}
					tgt := graph.ObjectID(to[k])
					if l.Target == AtomicTarget {
						if atomicWitnessSnap(snap, tgt, l) {
							found = true
							break
						}
					} else if member[l.Target].Test(int(tgt)) {
						found = true
						break
					}
				}
			} else {
				from, elab := snap.In(o)
				for k := range from {
					if elab[k] != lab {
						continue
					}
					if l.Target == AtomicTarget || member[l.Target].Test(int(from[k])) {
						found = true
						break
					}
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	countRow := func(t int, o graph.ObjectID) []int32 {
		links := p.Types[t].Links
		row := make([]int32, len(links))
		for li, l := range links {
			row[li] = countWitnessesSnap(snap, l, o, member)
		}
		return row
	}
	for _, np := range needRow {
		if check != nil {
			if steps++; steps%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		if k := key(np.t, np.o); !queuedRm[k] && !alive(np.t, np.o) {
			queuedRm[k] = true
			queue = append(queue, pr{np.t, np.o})
		}
	}

	// Removal propagation, as in the full evaluator but with sparse rows.
	// Bits clear on pop, and a first decrement reaching a pair without a row
	// counts it on the spot — see the invariant in the doc comment.
	pops := 0
	for len(queue) > 0 {
		if check != nil {
			if pops++; pops%checkEvery == 0 {
				if err := check(); err != nil {
					return nil, false, err
				}
			}
		}
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		x := rm.o
		for _, rf := range refs[rm.t] {
			if rf.lab < 0 {
				continue
			}
			handle := func(o graph.ObjectID) error {
				if !member[rf.t].Test(int(o)) {
					return nil
				}
				k := key(rf.t, o)
				row := rows[k]
				if row == nil {
					cost++
					if cost > budget {
						return errBudget
					}
					row = countRow(rf.t, o)
					rows[k] = row
				}
				row[rf.li]--
				if row[rf.li] == 0 && !queuedRm[k] {
					queuedRm[k] = true
					queue = append(queue, pr{rf.t, o})
				}
				return nil
			}
			if rf.dir == Out {
				from, lab := snap.In(x)
				for k := range from {
					if lab[k] != rf.lab {
						continue
					}
					if err := handle(graph.ObjectID(from[k])); err != nil {
						return fallback()
					}
				}
			} else {
				to, lab := snap.Out(x)
				for k := range to {
					if lab[k] != rf.lab {
						continue
					}
					o := graph.ObjectID(to[k])
					if snap.IsAtomic(o) {
						continue
					}
					if err := handle(o); err != nil {
						return fallback()
					}
				}
			}
		}
		// Clear only after the neighbor scan: a row counted during the pop
		// still includes this pair as a witness, so the decrements just
		// applied subtract it exactly once.
		own(rm.t)
		member[rm.t].Clear(int(rm.o))
	}
	return &Extent{Program: p, DB: snap.DB(), Member: member}, true, nil
}

// errBudget signals that lazy row materialization crossed the affected
// budget mid-descent; the evaluator falls back to the full computation.
var errBudget = &budgetErr{}

type budgetErr struct{}

func (*budgetErr) Error() string { return "typing: incremental budget exceeded" }

// countWitnessesSnap counts the witnesses of typed link l for object o under
// the given membership by scanning o's CSR edges. Unlike the histogram
// seeding of the full evaluator — which is valid only under the everything-
// is-a-member start — this respects arbitrary membership, as required by
// warm starts. An In link with an atomic target mirrors the full
// evaluator's histogram semantics (every in-edge counts; edge sources are
// complex by the data model).
func countWitnessesSnap(snap *compile.Snapshot, l TypedLink, o graph.ObjectID, member []*bitset.Set) int32 {
	lid, known := snap.LabelID(l.Label)
	if !known {
		return 0
	}
	lid32 := int32(lid)
	var c int32
	if l.Dir == Out {
		to, lab := snap.Out(o)
		for k := range to {
			if lab[k] != lid32 {
				continue
			}
			tgt := graph.ObjectID(to[k])
			if l.Target == AtomicTarget {
				if atomicWitnessSnap(snap, tgt, l) {
					c++
				}
			} else if member[l.Target].Test(int(tgt)) {
				c++
			}
		}
		return c
	}
	from, lab := snap.In(o)
	for k := range from {
		if lab[k] != lid32 {
			continue
		}
		if l.Target == AtomicTarget || member[l.Target].Test(int(from[k])) {
			c++
		}
	}
	return c
}
