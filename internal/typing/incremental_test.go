package typing_test

import (
	"fmt"
	"testing"

	"schemex/internal/compile"
	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/perfect"
	"schemex/internal/synth"
	"schemex/internal/typing"
)

// incrCase sets up a parent Q_D fixpoint, applies the delta, and returns
// everything EvalGFPSnapIncr needs plus the from-scratch reference extent.
func incrCase(t *testing.T, db *graph.DB, delta *graph.Delta) (qd2 *typing.Program, snap2 *compile.Snapshot, parent *typing.Extent, changed []int, eff *graph.DeltaEffect, want *typing.Extent) {
	t.Helper()
	snap := compile.Compile(db)
	qd, _, err := perfect.BuildQDSnapCheck(snap, typing.PictureOpts{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parent, err = typing.EvalGFPSnapCheck(qd, snap, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	child, eff, err := db.ApplyDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	snap2 = compile.Compile(child)
	qd2, _, err = perfect.BuildQDSnapCheck(snap2, typing.PictureOpts{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for ti, ty := range qd2.Types {
		same := ti < len(qd.Types) && len(ty.Links) == len(qd.Types[ti].Links)
		if same {
			for li := range ty.Links {
				if ty.Links[li] != qd.Types[ti].Links[li] {
					same = false
					break
				}
			}
		}
		if !same {
			changed = append(changed, ti)
		}
	}
	want, err = typing.EvalGFPSnapCheck(qd2, snap2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return qd2, snap2, parent, changed, eff, want
}

// TestIncrMatchesFull checks that incremental maintenance lands on the exact
// fixpoint the full evaluator computes, both when the incremental path is
// taken and when the budget forces the fallback.
func TestIncrMatchesFull(t *testing.T) {
	type tc struct {
		name  string
		db    *graph.DB
		delta func(db *graph.DB) *graph.Delta
	}
	edgeDelta := func(db *graph.DB) *graph.Delta {
		// Move one existing-label edge between existing objects.
		var edges []graph.Edge
		db.Links(func(e graph.Edge) { edges = append(edges, e) })
		e := edges[len(edges)/2]
		d := &graph.Delta{}
		d.RemoveLink(db.Name(e.From), db.Name(e.To), e.Label)
		var far graph.ObjectID
		for _, o := range db.ComplexObjects() {
			if o != e.From {
				far = o
			}
		}
		d.AddLink(db.Name(far), db.Name(e.To), e.Label)
		return d
	}
	var cases []tc
	for _, no := range []int{5, 6, 7, 8} { // graph-shaped presets: the GFP route
		p := synth.Presets()[no-1]
		db, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("DB%d", no), db, edgeDelta})
	}
	dbgDB, _ := dbg.Generate(dbg.Options{})
	cases = append(cases, tc{"dbg", dbgDB, edgeDelta})

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			qd2, snap2, parent, changed, eff, want := incrCase(t, c.db, c.delta(c.db))

			got, incr, err := typing.EvalGFPSnapIncr(qd2, snap2, parent, changed, eff.Touched, typing.IncrOptions{MaxAffectedFrac: 1.0})
			if err != nil {
				t.Fatal(err)
			}
			if !incr {
				t.Fatalf("budget 1.0 fell back to full recompute (affected region should fit)")
			}
			if !got.Equal(want) {
				t.Fatalf("incremental extent differs from full recompute")
			}

			got, incr, err = typing.EvalGFPSnapIncr(qd2, snap2, parent, changed, eff.Touched, typing.IncrOptions{MaxAffectedFrac: 1e-9})
			if err != nil {
				t.Fatal(err)
			}
			if incr {
				t.Fatalf("budget 1e-9 did not fall back")
			}
			if !got.Equal(want) {
				t.Fatalf("fallback extent differs from full recompute")
			}

			if got, _, err = typing.EvalGFPSnapIncr(qd2, snap2, nil, changed, eff.Touched, typing.IncrOptions{}); err != nil {
				t.Fatal(err)
			} else if !got.Equal(want) {
				t.Fatalf("nil-parent extent differs from full recompute")
			}
		})
	}
}

// TestIncrGrowth checks maintenance across deltas that grow the object
// universe: new complex objects and new atomics join mid-graph.
func TestIncrGrowth(t *testing.T) {
	p := synth.Presets()[6] // DB7
	db, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	anchor := db.Name(db.ComplexObjects()[0])
	label := db.Labels()[0]
	d := &graph.Delta{}
	d.AddAtomic("fresh.v", graph.Value{Sort: graph.SortString, Text: "x"})
	d.AddLink(anchor, "fresh", label)
	d.AddLink("fresh", "fresh.v", label)

	qd2, snap2, parent, changed, eff, want := incrCase(t, db, d)
	got, incr, err := typing.EvalGFPSnapIncr(qd2, snap2, parent, changed, eff.Touched, typing.IncrOptions{MaxAffectedFrac: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !incr {
		t.Fatal("growth delta fell back unexpectedly")
	}
	if !got.Equal(want) {
		t.Fatal("incremental extent differs from full recompute after growth")
	}
}
