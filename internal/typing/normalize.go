package typing

import (
	"fmt"
	"sort"
)

// Normalize returns a copy of the program with types sorted by name and all
// link targets remapped accordingly. Two programs that differ only in type
// order normalize to identical renderings, which makes Equal a simple
// string comparison. Names must be unique (Validate enforces this).
func (p *Program) Normalize() *Program {
	idx := make([]int, len(p.Types))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.Types[idx[a]].Name < p.Types[idx[b]].Name })
	remap := make([]int, len(p.Types))
	for newPos, oldPos := range idx {
		remap[oldPos] = newPos
	}
	out := NewProgram()
	for _, oldPos := range idx {
		t := p.Types[oldPos].Clone()
		for li, l := range t.Links {
			if l.Target != AtomicTarget {
				t.Links[li].Target = remap[l.Target]
			}
		}
		out.Add(t)
	}
	return out
}

// Equal reports whether two programs define the same named types with the
// same rules (order-insensitive; weights are ignored).
func (p *Program) Equal(q *Program) bool {
	if p.Len() != q.Len() {
		return false
	}
	return p.Normalize().String() == q.Normalize().String()
}

// Stats summarizes a program for reporting.
type ProgramStats struct {
	Types         int
	TypedLinks    int // total conjuncts (the paper's size measure)
	DistinctLinks int // hypercube dimensions L
	Incoming      int
	Outgoing      int
	AtomicTargets int
	TotalWeight   int
	MaxLinks      int // largest rule body
}

// Stats computes summary statistics of the program.
func (p *Program) Stats() ProgramStats {
	var s ProgramStats
	s.Types = p.Len()
	s.DistinctLinks = p.DistinctLinks()
	for _, t := range p.Types {
		s.TypedLinks += len(t.Links)
		s.TotalWeight += t.Weight
		if len(t.Links) > s.MaxLinks {
			s.MaxLinks = len(t.Links)
		}
		for _, l := range t.Links {
			if l.Dir == In {
				s.Incoming++
			} else {
				s.Outgoing++
			}
			if l.Target == AtomicTarget {
				s.AtomicTargets++
			}
		}
	}
	return s
}

func (s ProgramStats) String() string {
	return fmt.Sprintf("%d types, %d typed links (%d distinct; %d in, %d out, %d atomic), weight %d, largest rule %d",
		s.Types, s.TypedLinks, s.DistinctLinks, s.Incoming, s.Outgoing, s.AtomicTargets, s.TotalWeight, s.MaxLinks)
}
