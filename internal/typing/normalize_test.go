package typing

import (
	"strings"
	"testing"
)

func TestNormalizeOrdersAndRemaps(t *testing.T) {
	p := MustParse(`
		type zebra = ->ref[apple] & ->z[0]
		type apple = <-ref[zebra] & ->a[0]
	`)
	n := p.Normalize()
	if n.Types[0].Name != "apple" || n.Types[1].Name != "zebra" {
		t.Fatalf("not sorted: %v, %v", n.Types[0].Name, n.Types[1].Name)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// zebra's ref link must now target index 0 (apple).
	zi := n.IndexOf("zebra")
	found := false
	for _, l := range n.Types[zi].Links {
		if l.Label == "ref" && l.Dir == Out && l.Target == n.IndexOf("apple") {
			found = true
		}
	}
	if !found {
		t.Fatalf("targets not remapped: %s", n.TypeString(zi))
	}
	// The original program is untouched.
	if p.Types[0].Name != "zebra" {
		t.Fatal("Normalize mutated its receiver")
	}
}

func TestProgramEqual(t *testing.T) {
	a := MustParse(`
		type x = ->l[y]
		type y = ->m[0]
	`)
	b := MustParse(`
		type y = ->m[0]
		type x = ->l[y]
	`)
	if !a.Equal(b) {
		t.Fatal("order-permuted programs should be equal")
	}
	c := MustParse(`
		type x = ->l[y] & ->extra[0]
		type y = ->m[0]
	`)
	if a.Equal(c) {
		t.Fatal("different rules reported equal")
	}
	d := MustParse(`type x = ->l[x]`)
	if a.Equal(d) {
		t.Fatal("different sizes reported equal")
	}
}

func TestProgramStats(t *testing.T) {
	p := MustParse(`
		type a = ->x[0] & ->y[b] & <-z[b]
		type b = ->x[0]
	`)
	p.Types[0].Weight = 10
	p.Types[1].Weight = 3
	s := p.Stats()
	if s.Types != 2 || s.TypedLinks != 4 || s.Incoming != 1 || s.Outgoing != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AtomicTargets != 2 || s.TotalWeight != 13 || s.MaxLinks != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DistinctLinks != 3 {
		t.Fatalf("distinct = %d, want 3 (->x[0] shared)", s.DistinctLinks)
	}
	if !strings.Contains(s.String(), "2 types") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestHomeCandidates(t *testing.T) {
	db := figure2DB()
	// With the exact-picture program, g's only home candidate is person.
	exact := MustParse(`
		type person = ->is-manager-of[firm] & ->name[0] & <-is-managed-by[firm]
		type firm   = ->is-managed-by[person] & ->name[0] & <-is-manager-of[person]
	`)
	ee := EvalGFP(exact, db)
	got := ee.HomeCandidates(db.Lookup("g"))
	if len(got) != 1 || exact.Types[got[0]].Name != "person" {
		t.Fatalf("HomeCandidates(g) = %v", got)
	}
	// Under the looser Figure 2 program, g's picture strictly exceeds the
	// person rule: no exact home candidates.
	loose := figure2Program()
	le := EvalGFP(loose, db)
	if got := le.HomeCandidates(db.Lookup("g")); len(got) != 0 {
		t.Fatalf("loose HomeCandidates(g) = %v, want none", got)
	}
}
