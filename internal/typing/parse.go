package typing

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a typing program in the textual arrow notation produced by
// Program.String:
//
//	type person = <-employs[firm] & ->name[0]
//	type firm   = ->name[0] & ->employs[person]
//
// One type per line ("type" keyword optional); links separated by '&' or
// ','; the target "0" denotes the atomic type; other targets are type names,
// which may be referenced before their definition. Labels and names may be
// double-quoted. Line comments start with '#' or '//'.
func Parse(src string) (*Program, error) {
	p := NewProgram()
	type pendingLink struct {
		typeIdx int
		linkIdx int
		target  string
		line    int
	}
	var pending []pendingLink
	nameToIdx := make(map[string]int)

	lines := strings.Split(src, "\n")
	for lineNo0, raw := range lines {
		lineNo := lineNo0 + 1
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 && !strings.Contains(line[:i], "\"") {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lx := &ntLexer{src: line, line: lineNo}
		name, err := lx.word("type name")
		if err != nil {
			return nil, err
		}
		if name == "type" && lx.peekIsWord() {
			name, err = lx.word("type name")
			if err != nil {
				return nil, err
			}
		}
		if _, ok := nameToIdx[name]; ok {
			return nil, fmt.Errorf("typing: line %d: type %q defined twice", lineNo, name)
		}
		if name == "0" {
			return nil, fmt.Errorf("typing: line %d: type name %q is reserved for the atomic type", lineNo, name)
		}
		t := &Type{Name: name}
		idx := len(p.Types)
		nameToIdx[name] = idx
		if !lx.eat('=') {
			return nil, fmt.Errorf("typing: line %d: expected '=' after type name", lineNo)
		}
		for !lx.atEnd() {
			dir, err := lx.arrow()
			if err != nil {
				return nil, err
			}
			label, err := lx.word("link label")
			if err != nil {
				return nil, err
			}
			if !lx.eat('[') {
				return nil, fmt.Errorf("typing: line %d: expected '[' after label %q", lineNo, label)
			}
			target, err := lx.word("target type")
			if err != nil {
				return nil, err
			}
			link := TypedLink{Dir: dir, Label: label}
			if target == "0" && lx.eat(':') {
				sortName, err := lx.word("sort name")
				if err != nil {
					return nil, err
				}
				sc, ok := ParseSortConstraint(sortName)
				if !ok {
					return nil, fmt.Errorf("typing: line %d: unknown sort %q", lineNo, sortName)
				}
				link.Sort = sc
			}
			if target == "0" && lx.eat('=') {
				value, err := lx.word("value")
				if err != nil {
					return nil, err
				}
				link.Value = value
				link.HasValue = true
			}
			if !lx.eat(']') {
				return nil, fmt.Errorf("typing: line %d: expected ']' after target %q", lineNo, target)
			}
			if target == "0" {
				link.Target = AtomicTarget
			} else if ti, ok := nameToIdx[target]; ok {
				link.Target = ti
			} else {
				link.Target = -2 // patched below
				pending = append(pending, pendingLink{idx, len(t.Links), target, lineNo})
			}
			t.Links = append(t.Links, link)
			if !lx.eat('&') && !lx.eat(',') && !lx.atEnd() {
				return nil, fmt.Errorf("typing: line %d: expected '&', ',' or end of line", lineNo)
			}
		}
		p.Types = append(p.Types, t)
	}
	for _, pl := range pending {
		ti, ok := nameToIdx[pl.target]
		if !ok {
			return nil, fmt.Errorf("typing: line %d: link targets undefined type %q", pl.line, pl.target)
		}
		p.Types[pl.typeIdx].Links[pl.linkIdx].Target = ti
	}
	for _, t := range p.Types {
		t.Canonicalize()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse but panics on error; for tests and fixed programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ntLexer is a tiny single-line lexer for the arrow notation.
type ntLexer struct {
	src  string
	pos  int
	line int
}

func (l *ntLexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t') {
		l.pos++
	}
}

func (l *ntLexer) atEnd() bool {
	l.skipSpace()
	return l.pos >= len(l.src)
}

func (l *ntLexer) eat(c byte) bool {
	l.skipSpace()
	if l.pos < len(l.src) && l.src[l.pos] == c {
		l.pos++
		return true
	}
	return false
}

func (l *ntLexer) peekIsWord() bool {
	l.skipSpace()
	return l.pos < len(l.src) && (isWordChar(l.src[l.pos]) || l.src[l.pos] == '"')
}

func (l *ntLexer) arrow() (Dir, error) {
	l.skipSpace()
	if strings.HasPrefix(l.src[l.pos:], "<-") {
		l.pos += 2
		return In, nil
	}
	if strings.HasPrefix(l.src[l.pos:], "->") {
		l.pos += 2
		return Out, nil
	}
	return 0, fmt.Errorf("typing: line %d: expected '<-' or '->' at %q", l.line, l.src[l.pos:])
}

func (l *ntLexer) word(what string) (string, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return "", fmt.Errorf("typing: line %d: expected %s, got end of line", l.line, what)
	}
	if l.src[l.pos] == '"' {
		j := l.pos + 1
		for j < len(l.src) {
			if l.src[j] == '\\' {
				j += 2
				continue
			}
			if l.src[j] == '"' {
				break
			}
			j++
		}
		if j >= len(l.src) {
			return "", fmt.Errorf("typing: line %d: unterminated string", l.line)
		}
		unq, err := strconv.Unquote(l.src[l.pos : j+1])
		if err != nil {
			return "", fmt.Errorf("typing: line %d: bad quoted string %s: %v", l.line, l.src[l.pos:j+1], err)
		}
		l.pos = j + 1
		return unq, nil
	}
	j := l.pos
	for j < len(l.src) && isWordChar(l.src[j]) {
		j++
	}
	if j == l.pos {
		return "", fmt.Errorf("typing: line %d: expected %s at %q", l.line, what, l.src[l.pos:])
	}
	w := l.src[l.pos:j]
	l.pos = j
	return w, nil
}

func isWordChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == '.':
		return true
	}
	return false
}
