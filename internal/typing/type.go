// Package typing implements the paper's type description language: monadic
// datalog programs whose rule bodies are conjunctions of typed links, the
// arrow notation of §2, compilation to the generic datalog engine, and
// greatest-fixpoint evaluation over a semistructured database.
package typing

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Dir is the direction of a typed link relative to the object being typed.
type Dir uint8

// Typed-link directions.
const (
	// In is form 1 of §2: link(Y, X, ℓ) & c'(Y) — an incoming ℓ-edge from an
	// object of the target type. Written ←ℓ[c'].
	In Dir = iota
	// Out covers forms 2 and 3: link(X, Y, ℓ) with Y in the target type
	// (→ℓ[c']) or Y atomic (→ℓ[0], Target == AtomicTarget).
	Out
)

// AtomicTarget is the Target of a typed link that points to an atomic
// object (the paper's type₀).
const AtomicTarget = -1

// SortConstraint optionally restricts an atomic-target link to values of a
// single sort — the Remark 2.1 extension ("it is often easy to separate the
// atomic values into different sorts, e.g., integer, string…"). The zero
// value places no restriction, so plain programs are unaffected.
type SortConstraint uint8

// Sort constraints. They mirror graph.Sort, shifted so the zero value means
// "any atomic value".
const (
	AnySort SortConstraint = iota
	SortString
	SortInt
	SortFloat
	SortBool
)

func (s SortConstraint) String() string {
	switch s {
	case AnySort:
		return "any"
	case SortString:
		return "string"
	case SortInt:
		return "int"
	case SortFloat:
		return "float"
	case SortBool:
		return "bool"
	default:
		return "sort?"
	}
}

// ParseSortConstraint parses a sort name as used in the arrow notation.
func ParseSortConstraint(s string) (SortConstraint, bool) {
	switch s {
	case "any":
		return AnySort, true
	case "string":
		return SortString, true
	case "int":
		return SortInt, true
	case "float":
		return SortFloat, true
	case "bool":
		return SortBool, true
	}
	return AnySort, false
}

// TypedLink is one conjunct of a type definition.
type TypedLink struct {
	Dir    Dir
	Label  string
	Target int // index of the target type in the program, or AtomicTarget
	// Sort restricts an AtomicTarget link to one value sort; AnySort (the
	// zero value) for no restriction. Must be AnySort for complex targets.
	Sort SortConstraint
	// Value, when HasValue is set, restricts an AtomicTarget link to one
	// specific atomic value — the paper's future-work extension ("classify
	// differently objects with values 'Male' or 'Female' in a sex
	// subobject"). Written ->sex[0="Male"].
	Value    string
	HasValue bool
}

// Compare orders typed links canonically: direction, then label, then
// target, then sort. It returns -1, 0 or 1.
func (l TypedLink) Compare(m TypedLink) int {
	switch {
	case l.Dir != m.Dir:
		if l.Dir < m.Dir {
			return -1
		}
		return 1
	case l.Label != m.Label:
		if l.Label < m.Label {
			return -1
		}
		return 1
	case l.Target != m.Target:
		if l.Target < m.Target {
			return -1
		}
		return 1
	case l.Sort != m.Sort:
		if l.Sort < m.Sort {
			return -1
		}
		return 1
	case l.HasValue != m.HasValue:
		if !l.HasValue {
			return -1
		}
		return 1
	case l.Value != m.Value:
		if l.Value < m.Value {
			return -1
		}
		return 1
	}
	return 0
}

// Type is one intensional predicate of a typing program: a named set of
// typed links, canonically sorted, plus the number of objects that have the
// type as a home type (its weight, used by Stage 2 clustering).
type Type struct {
	Name   string
	Links  []TypedLink
	Weight int
}

// Canonicalize sorts the links and removes duplicates, in place.
func (t *Type) Canonicalize() {
	sort.Slice(t.Links, func(i, j int) bool { return t.Links[i].Compare(t.Links[j]) < 0 })
	out := t.Links[:0]
	for i, l := range t.Links {
		if i == 0 || l != t.Links[i-1] {
			out = append(out, l)
		}
	}
	t.Links = out
}

// HasLink reports whether the (canonicalized) type contains l.
func (t *Type) HasLink(l TypedLink) bool {
	i := sort.Search(len(t.Links), func(i int) bool { return t.Links[i].Compare(l) >= 0 })
	return i < len(t.Links) && t.Links[i] == l
}

// Clone returns a deep copy of the type.
func (t *Type) Clone() *Type {
	return &Type{Name: t.Name, Links: append([]TypedLink(nil), t.Links...), Weight: t.Weight}
}

// Program is a typing program: a list of types. Type i of the program is the
// paper's typeᵢ₊₁ (type₀ being the atomic type, which is implicit).
type Program struct {
	Types []*Type
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Add appends a type and returns its index.
func (p *Program) Add(t *Type) int {
	t.Canonicalize()
	p.Types = append(p.Types, t)
	return len(p.Types) - 1
}

// Len returns the number of types.
func (p *Program) Len() int { return len(p.Types) }

// IndexOf returns the index of the type with the given name, or -1.
func (p *Program) IndexOf(name string) int {
	for i, t := range p.Types {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that every link target is AtomicTarget or a valid type
// index, and that type names are unique and non-empty.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for i, t := range p.Types {
		if t.Name == "" {
			return fmt.Errorf("typing: type %d has no name", i)
		}
		if t.Name == "0" {
			return fmt.Errorf("typing: type %d is named %q, which is reserved for the atomic type", i, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("typing: duplicate type name %q", t.Name)
		}
		seen[t.Name] = true
		for _, l := range t.Links {
			if l.Target == AtomicTarget {
				if l.Dir == In {
					return fmt.Errorf("typing: type %q: incoming link %q from an atomic object is impossible (atomic objects have no outgoing edges)", t.Name, l.Label)
				}
				continue
			}
			if l.Target < 0 || l.Target >= len(p.Types) {
				return fmt.Errorf("typing: type %q: link %q targets unknown type %d", t.Name, l.Label, l.Target)
			}
			if l.Sort != AnySort {
				return fmt.Errorf("typing: type %q: link %q has a sort constraint but a complex target", t.Name, l.Label)
			}
			if l.HasValue {
				return fmt.Errorf("typing: type %q: link %q has a value constraint but a complex target", t.Name, l.Label)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	c := &Program{Types: make([]*Type, len(p.Types))}
	for i, t := range p.Types {
		c.Types[i] = t.Clone()
	}
	return c
}

// DistinctLinks returns the number of distinct typed links appearing in the
// program (the paper's L, the hypercube dimension of §5.2).
func (p *Program) DistinctLinks() int {
	set := make(map[TypedLink]bool)
	for _, t := range p.Types {
		for _, l := range t.Links {
			set[l] = true
		}
	}
	return len(set)
}

// Size returns the total number of typed links over all types, a natural
// measure of the size of a typing (§1).
func (p *Program) Size() int {
	n := 0
	for _, t := range p.Types {
		n += len(t.Links)
	}
	return n
}

// LinkString renders a typed link in the arrow notation of §2 using the
// program's type names: "<-label[name]", "->label[name]", or "->label[0]"
// for atomic targets.
func (p *Program) LinkString(l TypedLink) string {
	var arrow string
	if l.Dir == In {
		arrow = "<-"
	} else {
		arrow = "->"
	}
	target := "0"
	if l.Target != AtomicTarget {
		if l.Target >= 0 && l.Target < len(p.Types) {
			target = p.Types[l.Target].Name
		} else {
			target = strconv.Itoa(l.Target)
		}
	} else {
		if l.Sort != AnySort {
			target = "0:" + l.Sort.String()
		}
		if l.HasValue {
			target += "=" + strconv.Quote(l.Value)
		}
	}
	return fmt.Sprintf("%s%s[%s]", arrow, quoteLabel(l.Label), target)
}

// TypeString renders one type definition: "name = link & link & ...".
func (p *Program) TypeString(i int) string {
	t := p.Types[i]
	if len(t.Links) == 0 {
		return fmt.Sprintf("type %s =", quoteLabel(t.Name))
	}
	parts := make([]string, len(t.Links))
	for k, l := range t.Links {
		parts[k] = p.LinkString(l)
	}
	return fmt.Sprintf("type %s = %s", quoteLabel(t.Name), strings.Join(parts, " & "))
}

// String renders the whole program, one type per line, in the textual form
// accepted by Parse.
func (p *Program) String() string {
	var sb strings.Builder
	for i := range p.Types {
		sb.WriteString(p.TypeString(i))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func quoteLabel(s string) string {
	if s == "" {
		return strconv.Quote(s)
	}
	for i := 0; i < len(s); i++ {
		if !isWordChar(s[i]) {
			return strconv.Quote(s)
		}
	}
	return s
}
