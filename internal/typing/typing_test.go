package typing

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"schemex/internal/graph"
)

// figure2DB builds the manager/firm database of Figure 2.
func figure2DB() *graph.DB {
	db := graph.New()
	db.Link("g", "m", "is-manager-of")
	db.Link("j", "a", "is-manager-of")
	db.Link("m", "g", "is-managed-by")
	db.Link("a", "j", "is-managed-by")
	db.LinkAtom("g", "name", "gn", "Gates")
	db.LinkAtom("j", "name", "jn", "Jobs")
	db.LinkAtom("m", "name", "mn", "Microsoft")
	db.LinkAtom("a", "name", "an", "Apple")
	return db
}

// figure2Program is P0: person manages a firm and has a name; a firm is
// managed by a person and has a name.
func figure2Program() *Program {
	return MustParse(`
		type person = ->is-manager-of[firm] & ->name[0]
		type firm   = ->is-managed-by[person] & ->name[0]
	`)
}

func TestCanonicalize(t *testing.T) {
	ty := &Type{Name: "t", Links: []TypedLink{
		{Dir: Out, Label: "b", Target: AtomicTarget},
		{Dir: In, Label: "a", Target: 0},
		{Dir: Out, Label: "b", Target: AtomicTarget}, // duplicate
		{Dir: Out, Label: "a", Target: 1},
	}}
	ty.Canonicalize()
	if len(ty.Links) != 3 {
		t.Fatalf("canonicalize kept %d links, want 3 (dedup)", len(ty.Links))
	}
	for i := 1; i < len(ty.Links); i++ {
		if ty.Links[i-1].Compare(ty.Links[i]) >= 0 {
			t.Fatalf("links not strictly sorted: %v", ty.Links)
		}
	}
	if !ty.HasLink(TypedLink{Dir: In, Label: "a", Target: 0}) {
		t.Fatal("HasLink missed a present link")
	}
	if ty.HasLink(TypedLink{Dir: In, Label: "zz", Target: 0}) {
		t.Fatal("HasLink found an absent link")
	}
}

func TestValidateRejects(t *testing.T) {
	p := NewProgram()
	p.Add(&Type{Name: "x", Links: []TypedLink{{Dir: In, Label: "l", Target: AtomicTarget}}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "atomic") {
		t.Fatalf("incoming-from-atomic link should be rejected, got %v", err)
	}
	p2 := NewProgram()
	p2.Add(&Type{Name: "x", Links: []TypedLink{{Dir: Out, Label: "l", Target: 5}}})
	if err := p2.Validate(); err == nil {
		t.Fatal("out-of-range target should be rejected")
	}
	p3 := NewProgram()
	p3.Add(&Type{Name: "dup"})
	p3.Add(&Type{Name: "dup"})
	if err := p3.Validate(); err == nil {
		t.Fatal("duplicate type names should be rejected")
	}
}

func TestNotationRoundtrip(t *testing.T) {
	p := figure2Program()
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\nprogram:\n%s", err, p)
	}
	if p.String() != p2.String() {
		t.Fatalf("roundtrip changed program:\n%svs\n%s", p, p2)
	}
}

func TestNotationQuotedLabels(t *testing.T) {
	p := NewProgram()
	p.Add(&Type{Name: "weird type", Links: []TypedLink{{Dir: Out, Label: "label with space", Target: AtomicTarget}}})
	s := p.String()
	p2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse of %q: %v", s, err)
	}
	if p2.Types[0].Name != "weird type" || p2.Types[0].Links[0].Label != "label with space" {
		t.Fatalf("quoting lost data: %q -> %+v", s, p2.Types[0])
	}
}

func TestParseForwardReference(t *testing.T) {
	p := MustParse(`
		type a = ->next[b]
		type b = ->prev[a]
	`)
	if p.Types[0].Links[0].Target != 1 || p.Types[1].Links[0].Target != 0 {
		t.Fatalf("forward reference mis-resolved: %+v", p.Types)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"type a = ->x[undefined-type]",
		"type a = x[0]",                     // missing arrow
		"type a = ->x 0",                    // missing bracket
		"type a ->x[0]",                     // missing =
		"type a = ->x[0]\n type a = ->y[0]", // duplicate
		"type a = <-x[0]",                   // incoming from atomic
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestFigure2GFP(t *testing.T) {
	db := figure2DB()
	p := figure2Program()
	for name, eval := range map[string]func(*Program, *graph.DB) *Extent{
		"naive":   EvalGFPNaive,
		"support": EvalGFP,
	} {
		e := eval(p, db)
		person, firm := p.IndexOf("person"), p.IndexOf("firm")
		if got := e.Count(person); got != 2 {
			t.Errorf("%s: |person| = %d, want 2", name, got)
		}
		if got := e.Count(firm); got != 2 {
			t.Errorf("%s: |firm| = %d, want 2", name, got)
		}
		if !e.Has(person, db.Lookup("g")) || !e.Has(person, db.Lookup("j")) {
			t.Errorf("%s: person extent wrong", name)
		}
		if !e.Has(firm, db.Lookup("m")) || !e.Has(firm, db.Lookup("a")) {
			t.Errorf("%s: firm extent wrong", name)
		}
		if !e.IsFixpoint() {
			t.Errorf("%s: extent is not a fixpoint", name)
		}
	}
}

func TestGFPDropsUnsupported(t *testing.T) {
	db := figure2DB()
	// Remove Microsoft's name: m no longer satisfies firm, so g loses
	// person (its only is-manager-of target leaves firm).
	db.RemoveLink(db.Lookup("m"), db.Lookup("mn"), "name")
	p := figure2Program()
	e := EvalGFP(p, db)
	person, firm := p.IndexOf("person"), p.IndexOf("firm")
	if e.Has(firm, db.Lookup("m")) {
		t.Fatal("m kept firm without a name link")
	}
	if e.Has(person, db.Lookup("g")) {
		t.Fatal("g kept person after its firm witness vanished (no cascade)")
	}
	if !e.Has(person, db.Lookup("j")) || !e.Has(firm, db.Lookup("a")) {
		t.Fatal("unrelated objects lost their types")
	}
}

// randomDB and randomProgram drive the cross-evaluator property tests.
func randomDB(rng *rand.Rand, n int) *graph.DB {
	db := graph.New()
	labels := []string{"a", "b", "c"}
	names := make([]string, n)
	for i := range names {
		names[i] = "o" + itoa(i)
		db.Intern(names[i])
	}
	for i := 0; i < n*2; i++ {
		f, to := rng.Intn(n), rng.Intn(n)
		if f != to {
			db.Link(names[f], names[to], labels[rng.Intn(len(labels))])
		}
	}
	for i := 0; i < n/2; i++ {
		owner := names[rng.Intn(n)]
		atom := "v" + itoa(i)
		db.Atom(atom, atom)
		db.Link(owner, atom, labels[rng.Intn(len(labels))])
	}
	return db
}

func randomProgram(rng *rand.Rand, nTypes int) *Program {
	labels := []string{"a", "b", "c"}
	p := NewProgram()
	for i := 0; i < nTypes; i++ {
		ty := &Type{Name: "t" + itoa(i)}
		for j := 0; j < 1+rng.Intn(3); j++ {
			l := TypedLink{Label: labels[rng.Intn(len(labels))]}
			switch rng.Intn(3) {
			case 0:
				l.Dir, l.Target = Out, AtomicTarget
			case 1:
				l.Dir, l.Target = Out, rng.Intn(nTypes)
			default:
				l.Dir, l.Target = In, rng.Intn(nTypes)
			}
			ty.Links = append(ty.Links, l)
		}
		p.Add(ty)
	}
	return p
}

func itoa(i int) string {
	digits := "0123456789"
	if i < 10 {
		return digits[i : i+1]
	}
	return itoa(i/10) + digits[i%10:i%10+1]
}

// TestEvaluatorsAgreeProperty cross-checks the three GFP implementations —
// naive downward iteration, support counting, and the generic datalog
// engine — on random databases and programs.
func TestEvaluatorsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 4+rng.Intn(10))
		p := randomProgram(rng, 1+rng.Intn(4))
		e1 := EvalGFPNaive(p, db)
		e2 := EvalGFP(p, db)
		if !e1.Equal(e2) {
			t.Logf("seed %d: naive and support-count disagree", seed)
			return false
		}
		e3, err := EvalGFPDatalog(p, db)
		if err != nil {
			t.Logf("seed %d: datalog eval failed: %v", seed, err)
			return false
		}
		if !e1.Equal(e3) {
			t.Logf("seed %d: naive and datalog disagree", seed)
			return false
		}
		return e1.IsFixpoint()
	}
	// Fixed quick seed: the default time-seeded generator occasionally
	// draws a program whose datalog grounding is combinatorially slow,
	// timing the suite out. Determinism keeps the gate reproducible.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLocalLinks(t *testing.T) {
	db := figure2DB()
	p := figure2Program()
	e := EvalGFP(p, db)
	local := LocalLinks(db, db.Lookup("g"), func(x graph.ObjectID) []int { return e.TypesOf(x) })
	firm := p.IndexOf("firm")
	wantOut := TypedLink{Dir: Out, Label: "is-manager-of", Target: firm}
	found := false
	for _, l := range local {
		if l == wantOut {
			found = true
		}
	}
	if !found {
		t.Fatalf("local picture of g = %v missing %v", local, wantOut)
	}
	// g's name edge must appear as ->name[0].
	if !NewLinkSet(local)[TypedLink{Dir: Out, Label: "name", Target: AtomicTarget}] {
		t.Fatalf("local picture of g = %v missing ->name[0]", local)
	}
	// g is managed-by? No: g has incoming is-managed-by from m.
	if !NewLinkSet(local)[TypedLink{Dir: In, Label: "is-managed-by", Target: firm}] {
		t.Fatalf("local picture of g = %v missing <-is-managed-by[firm]", local)
	}
}

func TestAssignment(t *testing.T) {
	db := figure2DB()
	p := figure2Program()
	a := NewAssignment(p, db)
	g := db.Lookup("g")
	a.Assign(g, 0)
	a.Assign(g, 0) // idempotent
	a.Assign(g, 1)
	if got := a.Of(g); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Of(g) = %v, want [0 1]", got)
	}
	if !a.Has(g, 1) || a.Has(db.Lookup("m"), 0) {
		t.Fatal("Has wrong")
	}
	if got := len(a.Unclassified()); got != 3 {
		t.Fatalf("unclassified = %d, want 3 (j, m, a)", got)
	}
	member := a.Membership()
	if !member[0].Test(int(g)) || !member[1].Test(int(g)) {
		t.Fatal("membership bitsets wrong")
	}
}

func TestFromExtent(t *testing.T) {
	db := figure2DB()
	p := figure2Program()
	e := EvalGFP(p, db)
	a := FromExtent(e)
	for ti := range p.Types {
		for _, o := range e.Objects(ti) {
			if !a.Has(o, ti) {
				t.Fatalf("assignment missing (%s, %s)", db.Name(o), p.Types[ti].Name)
			}
		}
	}
}

func TestCompileDatalogForm(t *testing.T) {
	p := figure2Program()
	dp := CompileDatalog(p)
	if len(dp.Rules) != 2 {
		t.Fatalf("compiled %d rules, want 2", len(dp.Rules))
	}
	if err := dp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !dp.IsMonadicIDB() {
		t.Fatal("compiled program must have monadic IDBs")
	}
	s := dp.String()
	for _, frag := range []string{"t0(X)", "link(X, Y0, ", "atomic("} {
		if !strings.Contains(s, frag) {
			t.Errorf("compiled program missing %q:\n%s", frag, s)
		}
	}
}

func TestDistinctLinksAndSize(t *testing.T) {
	p := MustParse(`
		type a = ->x[0] & ->y[b]
		type b = ->x[0] & <-y[a]
	`)
	if got := p.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	// Distinct: ->x[0] shared, ->y[b], <-y[a] => 3.
	if got := p.DistinctLinks(); got != 3 {
		t.Fatalf("DistinctLinks = %d, want 3", got)
	}
}

func TestEmptyTypeViaComplexPredicate(t *testing.T) {
	// A type with no links compiles to a rule over complex/1 and must hold
	// of every complex object under the datalog GFP.
	p := NewProgram()
	p.Add(&Type{Name: "anything"})
	db := figure2DB()
	e, err := EvalGFPDatalog(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Count(0); got != 4 {
		t.Fatalf("|anything| = %d, want 4", got)
	}
	// The specialized evaluators agree: no links means no removal.
	if got := EvalGFP(p, db).Count(0); got != 4 {
		t.Fatalf("specialized |anything| = %d, want 4", got)
	}
}
