package typing

import (
	"schemex/internal/bitset"
	"schemex/internal/graph"
)

func newObjSet(db *graph.DB) *bitset.Set { return bitset.New(db.NumObjects()) }
