package typing

import (
	"strings"
	"testing"

	"schemex/internal/graph"
)

// peopleDB builds the paper's future-work scenario: persons with a sex
// subobject valued "Male" or "Female".
func peopleDB() *graph.DB {
	db := graph.New()
	add := func(name, sex string) {
		db.LinkAtom(name, "name", name+".n", name)
		db.Atom(name+".s", sex)
		db.Link(name, name+".s", "sex")
	}
	add("adam", "Male")
	add("bob", "Male")
	add("carol", "Female")
	add("dana", "Female")
	return db
}

func TestValuePredicateGFP(t *testing.T) {
	db := peopleDB()
	p := MustParse(`
		type male   = ->name[0] & ->sex[0="Male"]
		type female = ->name[0] & ->sex[0="Female"]
	`)
	for name, eval := range map[string]func(*Program, *graph.DB) *Extent{
		"naive":   EvalGFPNaive,
		"support": EvalGFP,
	} {
		e := eval(p, db)
		male, female := p.IndexOf("male"), p.IndexOf("female")
		if e.Count(male) != 2 || !e.Has(male, db.Lookup("adam")) || !e.Has(male, db.Lookup("bob")) {
			t.Errorf("%s: male extent wrong: %v", name, e.Objects(male))
		}
		if e.Count(female) != 2 || !e.Has(female, db.Lookup("carol")) {
			t.Errorf("%s: female extent wrong: %v", name, e.Objects(female))
		}
	}
	// Cross-check against the generic datalog engine (compiles the value as
	// a constant in atomic/2).
	e3, err := EvalGFPDatalog(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !EvalGFP(p, db).Equal(e3) {
		t.Fatal("datalog engine disagrees on value predicates")
	}
}

func TestValueNotationRoundtrip(t *testing.T) {
	src := `type male = ->sex[0="Male"] & ->age[0:int] & ->tag[0:string="x y"]`
	p := MustParse(src)
	p2 := MustParse(p.String())
	if p.String() != p2.String() {
		t.Fatalf("roundtrip changed program:\n%svs\n%s", p, p2)
	}
	ml := p.Types[0].Links
	foundValue := false
	for _, l := range ml {
		if l.HasValue && l.Value == "Male" {
			foundValue = true
		}
		if l.HasValue && l.Value == "x y" && l.Sort != SortString {
			t.Errorf("combined sort+value link lost its sort: %+v", l)
		}
	}
	if !foundValue {
		t.Fatalf("value constraint lost: %+v", ml)
	}
}

func TestValueOnComplexTargetRejected(t *testing.T) {
	p := NewProgram()
	p.Add(&Type{Name: "a"})
	p.Add(&Type{Name: "b", Links: []TypedLink{{Dir: Out, Label: "x", Target: 0, Value: "v", HasValue: true}}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "value") {
		t.Fatalf("value constraint on complex target accepted: %v", err)
	}
}

func TestValueCompareOrdering(t *testing.T) {
	a := TypedLink{Dir: Out, Label: "sex", Target: AtomicTarget, Value: "Female", HasValue: true}
	b := TypedLink{Dir: Out, Label: "sex", Target: AtomicTarget, Value: "Male", HasValue: true}
	plain := TypedLink{Dir: Out, Label: "sex", Target: AtomicTarget}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("value ordering broken")
	}
	if plain.Compare(a) >= 0 {
		t.Error("plain link should order before value-constrained link")
	}
	if a.Compare(a) != 0 {
		t.Error("self-compare nonzero")
	}
}

func TestLocalLinksOptsValueLabels(t *testing.T) {
	db := peopleDB()
	opts := PictureOpts{ValueLabels: map[string]bool{"sex": true}}
	local := LocalLinksOpts(db, db.Lookup("adam"), func(graph.ObjectID) []int { return nil }, opts)
	set := NewLinkSet(local)
	if !set[TypedLink{Dir: Out, Label: "sex", Target: AtomicTarget}] {
		t.Error("plain sex link missing from picture")
	}
	if !set[TypedLink{Dir: Out, Label: "sex", Target: AtomicTarget, Value: "Male", HasValue: true}] {
		t.Errorf("value-constrained sex link missing: %v", local)
	}
	// name is not a value label: no value form for it.
	if set[TypedLink{Dir: Out, Label: "name", Target: AtomicTarget, Value: "adam", HasValue: true}] {
		t.Error("non-value label leaked a value link")
	}
}
