// Fault injection for the durability tests. The hooks here simulate the two
// failure classes the recovery path must distinguish: torn writes (a crash
// mid-append leaves a prefix of a frame — recoverable, tail dropped) and
// bit rot (a complete frame whose checksum no longer matches — corruption,
// refused). They live in the package proper so the httpapi recovery tests
// can reuse them against real session directories.

package wal

import (
	"errors"
	"fmt"
	"os"
)

// errInjected is returned by an Append that hit an armed failpoint.
var errInjected = errors.New("wal: injected append failure")

// IsInjected reports whether err came from an armed failpoint.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// FailNextAppend arms the torn-write failpoint: the next Append persists
// only the first n bytes of its frame (n = 0 drops it entirely), then fails
// and closes the log, exactly like a process killed mid-write. Test-only.
func (l *Log) FailNextAppend(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failNext = n
}

// FlipBit XORs one bit of the file at the given byte offset — the
// fault-injection primitive for interior corruption.
func FlipBit(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return fmt.Errorf("wal: flipbit read at %d: %w", offset, err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return err
	}
	return f.Sync()
}

// TruncateAt cuts the file to n bytes — the fault-injection primitive for a
// torn tail.
func TruncateAt(path string, n int64) error {
	return os.Truncate(path, n)
}
