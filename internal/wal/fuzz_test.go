package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"schemex/internal/graph"
)

// buildLog assembles raw log bytes from frames without going through Log, so
// seeds cover both well-formed and hand-mangled inputs.
func buildLog(frames ...[]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	for _, f := range frames {
		buf.Write(f)
	}
	return buf.Bytes()
}

func frame(kind byte, payload []byte) []byte {
	b := make([]byte, headerLen+len(payload))
	putU32(b[0:4], uint32(len(payload)))
	b[4] = kind
	putU32(b[5:9], Checksum(payload))
	copy(b[headerLen:], payload)
	return b
}

// FuzzWALReplay feeds arbitrary bytes to the replay path. Invariants: no
// panic; every record delivered passed its checksum (re-verified here);
// offsets are monotonic; delta payloads that claim to be deltas either parse
// or are rejected without panicking; and Open never leaves a file that a
// second replay disagrees with.
func FuzzWALReplay(f *testing.F) {
	good := frame(KindDelta, []byte("link a b l\n"))
	base := frame(KindBase, []byte("link root child member\natomic leaf int 42\n"))
	flipped := append([]byte(nil), good...)
	flipped[headerLen+1] ^= 0x10
	badKind := frame(77, []byte("link a b l\n"))
	big := frame(KindDelta, bytes.Repeat([]byte("link a b c\n"), 400))

	f.Add(buildLog(base, good, good))
	f.Add(buildLog(good)[:MagicLen+headerLen+4]) // torn payload
	f.Add(buildLog(good, flipped, good))         // interior corruption
	f.Add(buildLog(badKind))
	f.Add(buildLog(big, good))
	f.Add([]byte("SXWAL00"))    // short magic
	f.Add([]byte("XXWAL001??")) // wrong magic
	f.Add(buildLog())
	f.Add(buildLog(frame(KindDelta, nil)))
	// A length field pointing far past EOF.
	huge := frame(KindDelta, []byte("x"))
	putU32(huge[0:4], 1<<27)
	f.Add(buildLog(good, huge))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		var prevEnd int64
		end, _, err := Replay(path, 0, func(r Record) error {
			if Checksum(r.Payload) != Checksum(r.Payload[:len(r.Payload):len(r.Payload)]) {
				t.Fatal("unstable checksum")
			}
			// Replay promised this payload passed its CRC: recompute it
			// against the frame bytes on disk.
			raw := make([]byte, headerLen)
			fh, ferr := os.Open(path)
			if ferr == nil {
				fh.ReadAt(raw, r.Offset)
				fh.Close()
				if getU32(raw[5:9]) != Checksum(r.Payload) {
					t.Fatalf("record at %d delivered with mismatched checksum", r.Offset)
				}
			}
			if r.Offset < prevEnd || r.End <= r.Offset {
				t.Fatalf("non-monotonic record: [%d,%d) after %d", r.Offset, r.End, prevEnd)
			}
			prevEnd = r.End
			if r.Kind == KindDelta {
				// Delta payloads must never panic the parser.
				graph.ParseDeltaString(string(r.Payload))
			}
			return nil
		})
		if err == nil && end < prevEnd {
			t.Fatalf("end %d before last record end %d", end, prevEnd)
		}
		// Open either refuses with the same corruption verdict or repairs
		// the tail to a state a second scan fully accepts.
		l, oerr := Open(path, SyncPolicy{})
		if oerr != nil {
			return
		}
		defer l.Close()
		if _, torn, rerr := Replay(path, 0, nil); rerr != nil || torn {
			t.Fatalf("post-open scan: torn=%v err=%v", torn, rerr)
		}
	})
}
