package wal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ManifestName is the file naming a session directory's current durable
// state. It is only ever replaced by an atomic rename, so a reader sees
// either the old state or the new one, never a half-written mix.
const ManifestName = "MANIFEST"

// Manifest points recovery at a session's durable state: the spilled
// snapshot (a graph in the text serialization), the session version it
// captures, and the log whose records at or after LogOffset must be replayed
// on top of it. Snapshot and Log are file names relative to the session
// directory.
type Manifest struct {
	Version   uint64 `json:"version"`
	Snapshot  string `json:"snapshot"`
	Log       string `json:"log"`
	LogOffset int64  `json:"logOffset"`
	// Core and Shards, when present, make the spill shard-granular: Core
	// names the compiled snapshot's core blob (label universe, global
	// tables, histograms) and Shards one file per CSR shard, in shard order,
	// all relative to the session directory. Recovery can then rebuild the
	// compiled snapshot without recompiling, loading shards lazily as
	// requests touch them. Absent (a manifest written before shard-granular
	// spills, or after a codec version bump), recovery recompiles from
	// Snapshot — the fields are an optimization, never a correctness
	// requirement.
	Core   string   `json:"core,omitempty"`
	Shards []string `json:"shards,omitempty"`
}

// ReadManifest loads a session directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("wal: %s: bad manifest: %v", dir, err)
	}
	if m.Log == "" {
		return m, fmt.Errorf("wal: %s: manifest names no log", dir)
	}
	return m, nil
}

// WriteManifest atomically replaces a session directory's manifest: the new
// contents are written to a temp file, fsynced, renamed over ManifestName,
// and the directory is fsynced so the rename survives a crash.
func WriteManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return WriteFileAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileAtomic writes a file via the temp-fsync-rename dance: after a
// crash, path holds either its previous contents or the complete new ones.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return err
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}
