package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Record is one replayed WAL record.
type Record struct {
	Kind    byte
	Offset  int64  // byte offset of the record's frame header
	End     int64  // byte offset just past the record — the replay watermark
	Payload []byte // checksum-verified payload; valid until fn returns
}

// Replay scans the log at path, delivering every checksum-valid record at or
// after byte offset from (0 means the start of the log) to fn in order. It
// returns the offset just past the last valid record and whether a torn tail
// — an incomplete final frame, the signature of a crash mid-append — was
// dropped to get there.
//
// Errors: a *CorruptError for interior corruption (bad magic, impossible
// header, checksum mismatch on a complete frame, or from beyond the end of
// the file — a manifest pointing past EOF); fn's error, which aborts the
// scan; or the underlying I/O error. fn may be nil to scan for the valid end
// only.
func Replay(path string, from int64, fn func(Record) error) (end int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	size := st.Size()
	if from > size {
		return 0, false, &CorruptError{Path: path, Offset: from, Reason: fmt.Sprintf("replay offset past end of log (%d bytes)", size)}
	}
	if from == 0 {
		if size < int64(MagicLen) {
			// The file died before its magic was complete: no valid
			// content, recoverable by rewriting the header.
			return 0, true, nil
		}
		var m [8]byte
		if _, err := io.ReadFull(f, m[:MagicLen]); err != nil {
			return 0, false, err
		}
		if string(m[:MagicLen]) != Magic {
			return 0, false, &CorruptError{Path: path, Offset: 0, Reason: "bad magic (not a schemex WAL)"}
		}
		from = int64(MagicLen)
	} else if from < int64(MagicLen) {
		return 0, false, &CorruptError{Path: path, Offset: from, Reason: "replay offset inside the file header"}
	} else if _, err := f.Seek(from, io.SeekStart); err != nil {
		return 0, false, err
	}

	br := bufio.NewReaderSize(f, 1<<16)
	off := from
	var header [headerLen]byte
	var payload []byte
	for {
		_, err := io.ReadFull(br, header[:])
		if err == io.EOF {
			return off, false, nil // clean end on a frame boundary
		}
		if err == io.ErrUnexpectedEOF {
			return off, true, nil // torn header
		}
		if err != nil {
			return off, false, err
		}
		length := getU32(header[0:4])
		kind := header[4]
		sum := getU32(header[5:9])
		if length > MaxRecordBytes {
			return off, false, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("record length %d exceeds MaxRecordBytes", length)}
		}
		if kind != KindDelta && kind != KindBase {
			return off, false, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("unknown record kind %d", kind)}
		}
		if off+int64(headerLen)+int64(length) > size {
			// The header promises more bytes than the file holds: a crash
			// mid-append. Only ever possible on the final frame.
			return off, true, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, false, err // size said the bytes exist; real I/O error
		}
		if Checksum(payload) != sum {
			return off, false, &CorruptError{Path: path, Offset: off, Reason: "checksum mismatch"}
		}
		next := off + int64(headerLen) + int64(length)
		if fn != nil {
			if err := fn(Record{Kind: kind, Offset: off, End: next, Payload: payload}); err != nil {
				return off, false, err
			}
		}
		off = next
	}
}
