// Package wal implements the write-ahead log behind durable delta sessions:
// an append-only file of checksummed, length-prefixed records, plus the
// atomic manifest and snapshot-spill helpers the server's recovery path
// builds on.
//
// A log file starts with an 8-byte magic and is followed by frames:
//
//	offset 0: u32 LE  payload length
//	offset 4: u8      record kind (KindDelta, KindBase)
//	offset 5: u32 LE  CRC32C (Castagnoli) of the payload
//	offset 9: payload bytes
//
// Payloads are opaque to this package; the server stores graph.Delta batches
// in their Delta.String() line format (KindDelta) and a full graph in the
// text serialization (KindBase) so a log is self-sufficient even when its
// snapshot file is lost.
//
// Crash semantics follow the classic WAL contract: a frame is written with a
// single Write call and (under the default SyncPolicy) fsynced before Append
// returns, so a record either exists completely or is a torn tail. Replay
// and Open drop an incomplete final frame silently — a crash mid-append must
// not poison the log — but a complete frame whose checksum fails is interior
// corruption and surfaces as a typed *CorruptError: the caller must refuse
// the data rather than serve a silently wrong prefix.
package wal

import (
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	// Magic identifies a schemex WAL file (8 bytes at offset 0).
	Magic = "SXWAL001"
	// MagicLen is the byte length of the file magic.
	MagicLen = len(Magic)
	// headerLen is the frame header size: u32 length, u8 kind, u32 CRC32C.
	headerLen = 9
	// MaxRecordBytes caps a single record's payload. A legal writer never
	// exceeds it (request bodies are far smaller), so a larger length field
	// is treated as corruption rather than an allocation request.
	MaxRecordBytes = 1 << 28

	// KindDelta marks a record holding a graph delta in the Delta.String()
	// line format.
	KindDelta byte = 1
	// KindBase marks a record holding a full graph in the text
	// serialization; it makes a log self-sufficient when the snapshot file
	// beside it is missing.
	KindBase byte = 2
)

// castagnoli is the CRC32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of a payload, exposed for tests that build
// frames by hand.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// CorruptError reports interior corruption: a structurally complete record
// that fails its checksum, an impossible header, a non-WAL file, or a replay
// offset beyond the end of the log. Torn tails (incomplete final frames) are
// NOT corruption and never produce this error.
type CorruptError struct {
	Path   string // the log file
	Offset int64  // byte offset of the offending record or field
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// SyncNever is the Every value meaning "no count-based sync": appends are
// never fsynced by count, only by an Interval ticker or an explicit Sync.
// (math.MaxInt, not a shifted literal, so the package builds on 32-bit
// GOARCHes too.)
const SyncNever = math.MaxInt

// SyncPolicy controls when Append calls fsync. The zero value is the safest
// setting: every append is synced before it is acknowledged.
type SyncPolicy struct {
	// Every syncs after this many appended records; <= 1 syncs every
	// append (the default and the only setting under which an Append
	// return implies durability of that record).
	Every int
	// Interval, when positive, runs a group-commit ticker that syncs any
	// pending appends at least this often, bounding the unsynced window
	// when Every > 1.
	Interval time.Duration
}

// ParseSyncPolicy reads the textual policy accepted by the server's -sync
// flag: "always" (or ""), "never", "every=N", or "interval=DURATION".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch {
	case s == "" || s == "always":
		return SyncPolicy{Every: 1}, nil
	case s == "never":
		return SyncPolicy{Every: SyncNever}, nil
	case len(s) > 6 && s[:6] == "every=":
		var n int
		if _, err := fmt.Sscanf(s[6:], "%d", &n); err != nil || n < 1 {
			return SyncPolicy{}, fmt.Errorf("wal: bad sync policy %q: every= needs a positive integer", s)
		}
		return SyncPolicy{Every: n}, nil
	case len(s) > 9 && s[:9] == "interval=":
		d, err := time.ParseDuration(s[9:])
		if err != nil || d <= 0 {
			return SyncPolicy{}, fmt.Errorf("wal: bad sync policy %q: interval= needs a positive duration", s)
		}
		return SyncPolicy{Every: SyncNever, Interval: d}, nil
	default:
		return SyncPolicy{}, fmt.Errorf("wal: unknown sync policy %q (always, never, every=N, interval=DUR)", s)
	}
}

func (p SyncPolicy) every() int {
	if p.Every < 1 {
		return 1
	}
	return p.Every
}

// Log is an append-only WAL open for writing. Appends are serialized; a Log
// is safe for concurrent use.
type Log struct {
	path string
	pol  SyncPolicy

	mu      sync.Mutex
	f       *os.File
	size    int64 // offset of the next append = bytes of valid content
	pending int   // appends since the last fsync
	closed  bool
	buf     []byte // reused frame buffer

	stopTick chan struct{}

	// failNext arms the torn-write failpoint: the next Append persists only
	// this many bytes of its frame, then fails with errInjected. -1 when
	// disarmed. Test-only; see Log.FailNextAppend.
	failNext int
}

// Create makes a new empty log at path, failing if the file already exists.
// The magic header is written and synced before Create returns.
func Create(path string, pol SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(path, f, int64(MagicLen), pol), nil
}

// Open opens an existing log (or creates it when absent) for appending. The
// file is scanned first: a torn tail left by a crash mid-append is truncated
// away so new appends start on a clean frame boundary, while interior
// corruption refuses the log with a *CorruptError.
func Open(path string, pol SyncPolicy) (*Log, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return Create(path, pol)
	}
	end, _, err := Replay(path, 0, nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if end < int64(MagicLen) {
		// The file died before the magic finished: rewrite it from scratch.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteAt([]byte(Magic), 0); err != nil {
			f.Close()
			return nil, err
		}
		end = int64(MagicLen)
	} else if st, err := f.Stat(); err == nil && st.Size() > end {
		// Drop the torn tail so the next frame starts cleanly.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(path, f, end, pol), nil
}

func newLog(path string, f *os.File, size int64, pol SyncPolicy) *Log {
	l := &Log{path: path, pol: pol, f: f, size: size, failNext: -1}
	if pol.Interval > 0 {
		l.stopTick = make(chan struct{})
		go l.tick(pol.Interval)
	}
	return l
}

// tick is the group-commit loop: it syncs pending appends at least every
// interval until Close.
func (l *Log) tick(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.pending > 0 {
				if err := l.f.Sync(); err == nil {
					l.pending = 0
				}
			}
			l.mu.Unlock()
		}
	}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Size returns the offset of the next append — the end of valid content.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Append writes one record and returns the log's end offset after it. Under
// the default SyncPolicy (Every <= 1) the record is fsynced before Append
// returns, so a nil error means the record is durable; with a batched policy
// durability lags by at most Every records or one Interval.
func (l *Log) Append(kind byte, payload []byte) (int64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: %s: append on closed log", l.path)
	}
	need := headerLen + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	frame := l.buf[:need]
	putU32(frame[0:4], uint32(len(payload)))
	frame[4] = kind
	putU32(frame[5:9], Checksum(payload))
	copy(frame[headerLen:], payload)

	if l.failNext >= 0 {
		// Torn-write failpoint: persist a prefix of the frame, then die the
		// way a crash mid-append would. The log is unusable afterwards.
		n := l.failNext
		if n > len(frame) {
			n = len(frame)
		}
		l.failNext = -1
		if n > 0 {
			l.f.WriteAt(frame[:n], l.size)
			l.f.Sync()
		}
		l.closed = true
		l.f.Close()
		return 0, errInjected
	}

	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		return 0, err
	}
	l.size += int64(need)
	l.pending++
	if l.pending >= l.pol.every() {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		l.pending = 0
	}
	return l.size, nil
}

// AppendAll writes one record per payload with a single write and at most one
// fsync, returning the log's end offset after the last record. It is the
// group-commit primitive behind batched session mutations: N acknowledged
// deltas cost one durability round trip instead of N, while replay still sees
// N independent records. Durability semantics match Append — under the
// default SyncPolicy all records are durable on return; with a batched policy
// the records count as pending appends toward the next count- or
// interval-triggered sync. An empty batch is a no-op.
func (l *Log) AppendAll(kind byte, payloads [][]byte) (int64, error) {
	need := 0
	for _, p := range payloads {
		if len(p) > MaxRecordBytes {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(p))
		}
		need += headerLen + len(p)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: %s: append on closed log", l.path)
	}
	if len(payloads) == 0 {
		return l.size, nil
	}
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	frames := l.buf[:need]
	off := 0
	for _, p := range payloads {
		frame := frames[off : off+headerLen+len(p)]
		putU32(frame[0:4], uint32(len(p)))
		frame[4] = kind
		putU32(frame[5:9], Checksum(p))
		copy(frame[headerLen:], p)
		off += headerLen + len(p)
	}

	if l.failNext >= 0 {
		// Same torn-write failpoint as Append: the batch is one physical
		// write, so a crash tears at an arbitrary byte within it.
		n := l.failNext
		if n > len(frames) {
			n = len(frames)
		}
		l.failNext = -1
		if n > 0 {
			l.f.WriteAt(frames[:n], l.size)
			l.f.Sync()
		}
		l.closed = true
		l.f.Close()
		return 0, errInjected
	}

	if _, err := l.f.WriteAt(frames, l.size); err != nil {
		return 0, err
	}
	l.size += int64(need)
	l.pending += len(payloads)
	if l.pending >= l.pol.every() {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		l.pending = 0
	}
	return l.size, nil
}

// Sync forces pending appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.pending = 0
	return nil
}

// Close syncs and closes the log. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.stopTick != nil {
		close(l.stopTick)
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
