package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// appendN appends n delta-kind records with distinguishable payloads and
// returns their payloads in order.
func appendN(t *testing.T, l *Log, n int) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("link a b l%d\n", i))
		if _, err := l.Append(KindDelta, p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out = append(out, p)
	}
	return out
}

func replayAll(t *testing.T, path string, from int64) (recs []Record, end int64, torn bool) {
	t.Helper()
	end, torn, err := Replay(path, from, func(r Record) error {
		cp := Record{Kind: r.Kind, Offset: r.Offset, End: r.End, Payload: append([]byte(nil), r.Payload...)}
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, end, torn
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindBase, []byte("link a b l\n")); err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, end, torn := replayAll(t, path, 0)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	if recs[0].Kind != KindBase {
		t.Fatalf("first record kind %d, want base", recs[0].Kind)
	}
	for i, r := range recs[1:] {
		if r.Kind != KindDelta || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d: kind %d payload %q, want %q", i, r.Kind, r.Payload, want[i])
		}
	}
	st, _ := os.Stat(path)
	if end != st.Size() {
		t.Fatalf("end %d != file size %d", end, st.Size())
	}

	// Replaying from a mid-log watermark yields only the suffix.
	suffix, _, _ := func() ([]Record, int64, bool) {
		var rs []Record
		e, tn, err := Replay(path, recs[3].End, func(r Record) error {
			rs = append(rs, Record{Kind: r.Kind, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			t.Fatalf("suffix replay: %v", err)
		}
		return rs, e, tn
	}()
	if len(suffix) != 2 || !bytes.Equal(suffix[0].Payload, want[3]) {
		t.Fatalf("suffix replay: %d records", len(suffix))
	}
}

func TestAppendAllRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	var batch [][]byte
	for i := 0; i < 5; i++ {
		batch = append(batch, []byte(fmt.Sprintf("link a b l%d\n", i)))
	}
	end, err := l.AppendAll(KindDelta, batch)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != end {
		t.Fatalf("Size=%d want %d", got, end)
	}
	// An empty batch is a no-op at the current offset.
	if e2, err := l.AppendAll(KindDelta, nil); err != nil || e2 != end {
		t.Fatalf("empty AppendAll: end=%d err=%v, want %d nil", e2, err, end)
	}
	// Records interleave transparently with single appends.
	if _, err := l.Append(KindDelta, []byte("link x y z\n")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, torn := replayAll(t, path, 0)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for i, want := range batch {
		if recs[i].Kind != KindDelta || !bytes.Equal(recs[i].Payload, want) {
			t.Fatalf("record %d: payload %q, want %q", i, recs[i].Payload, want)
		}
	}
}

func TestAppendAllBatchedSyncCounts(t *testing.T) {
	// pending advances by the number of records, not the number of writes:
	// with Every=3 a 2-record batch leaves 2 pending and one more record
	// triggers the sync.
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{Every: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendAll(KindDelta, [][]byte{[]byte("a\n"), []byte("b\n")}); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	pending := l.pending
	l.mu.Unlock()
	if pending != 2 {
		t.Fatalf("pending=%d want 2", pending)
	}
	if _, err := l.Append(KindDelta, []byte("c\n")); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	pending = l.pending
	l.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending=%d want 0 after count-triggered sync", pending)
	}
}

func TestAppendAllTornBatch(t *testing.T) {
	// A crash mid-batch tears at an arbitrary byte: complete leading frames
	// survive, the torn one is dropped on reopen.
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindDelta, []byte("keep\n")); err != nil {
		t.Fatal(err)
	}
	// Tear inside the second frame of the batch: first frame is 9+3 bytes.
	l.FailNextAppend(12 + 5)
	if _, err := l.AppendAll(KindDelta, [][]byte{[]byte("aa\n"), []byte("bb\n")}); err == nil {
		t.Fatal("expected injected failure")
	}
	l2, err := Open(path, SyncPolicy{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	recs, _, _ := replayAll(t, path, 0)
	if len(recs) != 2 || string(recs[1].Payload) != "aa\n" {
		t.Fatalf("got %d records (last %q), want keep+aa", len(recs), recs[len(recs)-1].Payload)
	}
}

func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	// Cut the file at every offset inside the final frame: each is a
	// plausible crash point and each must recover to exactly 2 records.
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()
	recs, _, _ := replayAll(t, path, 0)
	lastStart := recs[2].Offset
	fileEnd := recs[2].End
	for cut := lastStart + 1; cut < fileEnd; cut++ {
		cutPath := filepath.Join(dir, fmt.Sprintf("cut%d.log", cut))
		data, _ := os.ReadFile(path)
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, end, torn := replayAll(t, cutPath, 0)
		if !torn {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if len(rs) != 2 || end != lastStart {
			t.Fatalf("cut at %d: %d records end %d, want 2 records end %d", cut, len(rs), end, lastStart)
		}
		// Open repairs the tail and appending resumes cleanly.
		l2, err := Open(cutPath, SyncPolicy{})
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		if _, err := l2.Append(KindDelta, []byte("link x y z\n")); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		l2.Close()
		rs2, _, torn2 := replayAll(t, cutPath, 0)
		if torn2 || len(rs2) != 3 {
			t.Fatalf("cut at %d: after repair %d records torn=%v", cut, len(rs2), torn2)
		}
	}
}

func TestInteriorCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()
	recs, _, _ := replayAll(t, path, 0)

	// Flip a payload bit in the middle record: a complete frame with a bad
	// checksum is interior corruption, not a torn tail.
	if err := FlipBit(path, recs[1].Offset+headerLen+2); err != nil {
		t.Fatal(err)
	}
	_, _, err = Replay(path, 0, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("replay after bit flip: %v, want *CorruptError", err)
	}
	if ce.Offset != recs[1].Offset {
		t.Fatalf("corrupt offset %d, want %d", ce.Offset, recs[1].Offset)
	}
	// Open must refuse too — appending to a corrupt log would bury the rot.
	if _, err := Open(path, SyncPolicy{}); !errors.As(err, &ce) {
		t.Fatalf("open on corrupt log: %v, want *CorruptError", err)
	}
	// Records before the corruption are still delivered.
	var got int
	_, _, err = Replay(path, 0, func(Record) error { got++; return nil })
	if !errors.As(err, &ce) || got != 1 {
		t.Fatalf("prefix delivery: %d records, err %v", got, err)
	}
}

func TestHeaderCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Create(path, SyncPolicy{})
	appendN(t, l, 2)
	l.Close()
	recs, _, _ := replayAll(t, path, 0)

	// A flipped kind byte on an interior frame is an impossible header.
	if err := FlipBit(path, recs[0].Offset+4); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := Replay(path, 0, nil); !errors.As(err, &ce) {
		t.Fatalf("flipped kind: %v, want *CorruptError", err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0somebytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := Replay(path, 0, nil); !errors.As(err, &ce) {
		t.Fatalf("bad magic: %v, want *CorruptError", err)
	}
}

func TestReplayOffsetPastEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Create(path, SyncPolicy{})
	appendN(t, l, 1)
	l.Close()
	st, _ := os.Stat(path)
	var ce *CorruptError
	if _, _, err := Replay(path, st.Size()+7, nil); !errors.As(err, &ce) {
		t.Fatalf("offset past EOF: %v, want *CorruptError", err)
	}
	// Exactly at EOF is a clean empty suffix, not corruption.
	if _, _, err := Replay(path, st.Size(), nil); err != nil {
		t.Fatalf("offset at EOF: %v", err)
	}
}

func TestShortMagicRecovered(t *testing.T) {
	// A crash during Create can leave fewer than MagicLen bytes; the file
	// has no content to lose, so Open rewrites it.
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("SXW"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, torn, err := Replay(path, 0, nil); err != nil || !torn {
		t.Fatalf("short magic: torn=%v err=%v, want torn", torn, err)
	}
	l, err := Open(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1)
	l.Close()
	recs, _, torn := replayAll(t, path, 0)
	if torn || len(recs) != 1 {
		t.Fatalf("after repair: %d records torn=%v", len(recs), torn)
	}
}

func TestFailpointTornAppend(t *testing.T) {
	// The in-process failpoint must leave exactly the crash-mid-append
	// shape: a valid prefix plus a torn frame that recovery drops.
	for _, partial := range []int{0, 3, headerLen, headerLen + 4} {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("wal%d.log", partial))
		l, err := Create(path, SyncPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 2)
		l.FailNextAppend(partial)
		if _, err := l.Append(KindDelta, []byte("link q r s\n")); !IsInjected(err) {
			t.Fatalf("partial=%d: err %v, want injected", partial, err)
		}
		recs, _, torn := replayAll(t, path, 0)
		if len(recs) != 2 {
			t.Fatalf("partial=%d: %d records, want 2", partial, len(recs))
		}
		if (partial > 0) != torn {
			t.Fatalf("partial=%d: torn=%v", partial, torn)
		}
		if _, err := Open(path, SyncPolicy{}); err != nil {
			t.Fatalf("partial=%d: open after torn append: %v", partial, err)
		}
	}
}

func TestSyncPolicyBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{Every: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.mu.Lock()
	pend := l.pending
	l.mu.Unlock()
	if pend != 0 {
		t.Fatalf("fresh pending %d", pend)
	}
	appendN(t, l, 2)
	l.mu.Lock()
	pend = l.pending
	l.mu.Unlock()
	if pend != 2 {
		t.Fatalf("pending after 2 appends under every=3: %d", pend)
	}
	appendN(t, l, 1)
	l.mu.Lock()
	pend = l.pending
	l.mu.Unlock()
	if pend != 0 {
		t.Fatalf("pending after group commit: %d", pend)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncPolicy{Every: 1 << 30, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 4)
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		pend := l.pending
		l.mu.Unlock()
		if pend == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval ticker never synced pending appends")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in    string
		every int
		ival  time.Duration
		err   bool
	}{
		{"", 1, 0, false},
		{"always", 1, 0, false},
		{"never", SyncNever, 0, false},
		{"every=8", 8, 0, false},
		{"interval=50ms", SyncNever, 50 * time.Millisecond, false},
		{"every=0", 0, 0, true},
		{"interval=-1s", 0, 0, true},
		{"bogus", 0, 0, true},
	}
	for _, c := range cases {
		p, err := ParseSyncPolicy(c.in)
		if c.err {
			if err == nil {
				t.Errorf("%q: no error", c.in)
			}
			continue
		}
		if err != nil || p.Every != c.every || p.Interval != c.ival {
			t.Errorf("%q: %+v err %v", c.in, p, err)
		}
	}
}

func TestManifestRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Version: 42, Snapshot: "snapshot-42.graph", Log: "wal-42.log", LogOffset: 137,
		Core: "snapshot-42.core", Shards: []string{"shard-42-0.shard", "shard-42-1.shard"}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	// Overwrite is atomic: the temp file never lingers and the new state
	// fully replaces the old.
	m2 := Manifest{Version: 43, Snapshot: "snapshot-43.graph", Log: "wal-43.log"}
	if err := WriteManifest(dir, m2); err != nil {
		t.Fatal(err)
	}
	got, err = ReadManifest(dir)
	if err != nil || !reflect.DeepEqual(got, m2) {
		t.Fatalf("after overwrite: %+v err %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != ManifestName {
			t.Fatalf("stray file %q after atomic writes", e.Name())
		}
	}
	// A manifest naming no log is refused.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("empty manifest accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Create(path, SyncPolicy{})
	l.Close()
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := l.Append(KindDelta, []byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestWriteFileAtomicWriteFailure: an error from the write callback leaves
// the destination untouched (previous contents intact) and removes the temp
// file, so a failed atomic write can never be observed as a partial one.
func TestWriteFileAtomicWriteFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	if err := os.WriteFile(path, []byte("old contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half a new f")) // partial write, then failure
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old contents" {
		t.Fatalf("destination disturbed by failed write: %q, %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "target" {
			t.Fatalf("temp file leaked after failed write: %q", e.Name())
		}
	}
}

// TestWriteFileAtomicRenameFailure: when the final rename cannot succeed
// (here the destination is a non-empty directory), the error propagates and
// the temp file is cleaned up rather than stranded beside the target.
func TestWriteFileAtomicRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	if err := os.MkdirAll(filepath.Join(path, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents"))
		return err
	})
	if err == nil {
		t.Fatal("rename over a non-empty directory reported success")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "target" {
			t.Fatalf("temp file leaked after failed rename: %q", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(path, "occupied")); err != nil {
		t.Fatalf("destination directory disturbed: %v", err)
	}
}
