// Property tests for the prepared-extraction path: Prepare + ExtractPrepared
// must be observationally identical to Extract — byte-identical schemas and
// identical per-object assignments — across the Table 1 synthetic shapes,
// generator seeds, serial and parallel execution, and repeated extractions
// over one Prepared (which exercises the Stage 1 memo).
package schemex

import (
	"fmt"
	"testing"

	"schemex/internal/dbg"
	"schemex/internal/graph"
	"schemex/internal/synth"
)

func assertSameExtraction(t *testing.T, db *graph.DB, cold, warm *Result, label string) {
	t.Helper()
	if cold.Schema() != warm.Schema() {
		t.Fatalf("%s: schemas differ:\ncold:\n%s\nwarm:\n%s", label, cold.Schema(), warm.Schema())
	}
	if cold.Defect() != warm.Defect() || cold.Unclassified() != warm.Unclassified() {
		t.Fatalf("%s: defect %d/%d vs %d/%d", label,
			cold.Defect(), cold.Unclassified(), warm.Defect(), warm.Unclassified())
	}
	ca, wa := cold.Internal().Assignment, warm.Internal().Assignment
	for _, o := range db.ComplexObjects() {
		if fmt.Sprint(ca.Of(o)) != fmt.Sprint(wa.Of(o)) {
			t.Fatalf("%s: assignment of %s differs: %v vs %v",
				label, db.Name(o), ca.Of(o), wa.Of(o))
		}
	}
}

func TestPrepareExtractEquivalence(t *testing.T) {
	type tc struct {
		name string
		db   *graph.DB
		k    int
	}
	var cases []tc
	for _, p := range synth.Presets() {
		db, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("DB%d", p.DBNo), db, p.Intended()})
	}
	for _, seed := range []int64{0, 3} {
		db, _ := dbg.Generate(dbg.Options{Seed: seed})
		cases = append(cases, tc{fmt.Sprintf("dbg-seed%d", seed), db, 6})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g := &Graph{db: c.db}
			prep, err := Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			var reference *Result
			for _, par := range []int{1, 0} {
				opts := Options{K: c.k, Parallelism: par}
				label := fmt.Sprintf("parallelism=%d", par)
				cold, err := Extract(g, opts)
				if err != nil {
					t.Fatalf("%s: cold: %v", label, err)
				}
				warm, err := ExtractPrepared(prep, opts)
				if err != nil {
					t.Fatalf("%s: warm: %v", label, err)
				}
				assertSameExtraction(t, c.db, cold, warm, label)
				// A second prepared run replays the memoized Stage 1; it
				// must change nothing.
				again, err := ExtractPrepared(prep, opts)
				if err != nil {
					t.Fatalf("%s: warm repeat: %v", label, err)
				}
				assertSameExtraction(t, c.db, warm, again, label+" repeat")
				if reference == nil {
					reference = cold
				} else if reference.Schema() != cold.Schema() {
					t.Fatalf("%s: schema differs across parallelism settings", label)
				}
			}
			// Changing a Stage-1-relevant option over the same Prepared must
			// recompute, not replay, the memo.
			sorted, err := ExtractPrepared(prep, Options{K: c.k, UseSorts: true})
			if err != nil {
				t.Fatal(err)
			}
			coldSorted, err := Extract(g, Options{K: c.k, UseSorts: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameExtraction(t, c.db, coldSorted, sorted, "useSorts")
		})
	}
}

func TestPrepareSweepEquivalence(t *testing.T) {
	db, _ := dbg.Generate(dbg.Options{})
	g := &Graph{db: db}
	prep, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 0} {
		opts := Options{Parallelism: par}
		cold, err := SweepAnalysis(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := SweepPrepared(prep, opts)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(cold.Points) != fmt.Sprint(warm.Points) || cold.Suggested != warm.Suggested {
			t.Fatalf("parallelism=%d: sweep curves differ", par)
		}
	}
}
