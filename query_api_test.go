package schemex

import (
	"testing"
)

func TestFindPathPublicAPI(t *testing.T) {
	g := NewGraph()
	g.Link("group", "alice", "member")
	g.Link("group", "bob", "member")
	g.LinkAtom("alice", "name", "Alice")
	g.LinkAtom("alice", "phone", "555")
	g.LinkAtom("bob", "name", "Bob")

	naive, err := g.FindPath("member.phone")
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != 1 || naive[0] != "group" {
		t.Fatalf("FindPath = %v, want [group]", naive)
	}

	res, err := Extract(g, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := res.FindPath("member.phone")
	if err != nil {
		t.Fatal(err)
	}
	if len(guided) != 1 || guided[0] != "group" {
		t.Fatalf("guided FindPath = %v, want [group]", guided)
	}

	// Wildcards and closure agree between the two evaluators.
	for _, path := range []string{"member.*", "#.phone", "member.name"} {
		a, err := g.FindPath(path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.FindPath(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("path %s: naive %v vs guided %v", path, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("path %s: naive %v vs guided %v", path, a, b)
			}
		}
	}

	if _, err := g.FindPath("a..b"); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestPathValuesPublicAPI(t *testing.T) {
	g := NewGraph()
	g.Link("root", "kid", "child")
	g.LinkAtom("kid", "name", "Kid")
	g.LinkAtom("kid", "age", "7")

	vals, err := g.PathValues("root", "child.*")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "7" || vals[1] != "Kid" {
		t.Fatalf("PathValues = %v", vals)
	}
	if _, err := g.PathValues("nope", "child"); err == nil {
		t.Fatal("unknown start object accepted")
	}
}
