// Robustness surface of the schemex facade: cancellable entry points,
// resource budgets, typed limit errors, panic containment, and
// error-returning graph builders. A host process (the HTTP API, the CLI, or
// an embedding service) drives extraction through ExtractContext /
// SweepAnalysisContext with Options.Limits set, and every failure mode —
// cancellation, deadline, oversized input, internal invariant violation —
// surfaces as an error value instead of a crash or a runaway computation.
package schemex

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"schemex/internal/core"
	"schemex/internal/graph"
)

// Limits bounds the resources a load or an extraction may consume. Zero or
// negative fields mean "unlimited" (except MaxDepth, which falls back to a
// built-in recursion guard). Violations surface as *LimitError.
type Limits struct {
	// MaxBytes caps the raw input size accepted by the limited loaders
	// (ReadGraphLimits, ParseOEMLimits, ParseJSONLimits).
	MaxBytes int64
	// MaxObjects caps the number of objects, complex plus atomic. The
	// loaders enforce it while parsing; the pipeline re-checks it before
	// Stage 1.
	MaxObjects int
	// MaxLinks caps the number of link facts, enforced like MaxObjects.
	MaxLinks int
	// MaxDepth caps OEM/JSON nesting depth. Unset means the built-in
	// parser-recursion guard (graph.DefaultMaxDepth).
	MaxDepth int
	// MaxTypes caps the size of the Stage 1 perfect typing. Stage 2 is
	// quadratic in this count, so the cap bounds clustering memory/time.
	MaxTypes int
	// MaxWallTime caps the wall-clock time of an ExtractContext /
	// SweepAnalysisContext run; expiry returns a *LimitError wrapping
	// context.DeadlineExceeded.
	MaxWallTime time.Duration
}

// loader projects the caps the loaders enforce.
func (l Limits) loader() graph.Limits {
	return graph.Limits{
		MaxBytes:   l.MaxBytes,
		MaxObjects: l.MaxObjects,
		MaxLinks:   l.MaxLinks,
		MaxDepth:   l.MaxDepth,
	}
}

// pipeline projects the caps the extraction pipeline enforces.
func (l Limits) pipeline() core.Limits {
	return core.Limits{
		MaxObjects:  l.MaxObjects,
		MaxLinks:    l.MaxLinks,
		MaxTypes:    l.MaxTypes,
		MaxWallTime: l.MaxWallTime,
	}
}

// LimitError reports a violated resource budget: which resource ("bytes",
// "objects", "links", "depth", "types", "wall-time"), the configured cap,
// and the observed value. Match with errors.As(err, *(*LimitError)).
type LimitError = graph.LimitError

// InternalError wraps a panic recovered at the facade boundary: an internal
// invariant of the extraction machinery failed (or the Graph was built
// without NewGraph). The host process gets an error value instead of a
// crash; Stack carries the panicking goroutine's trace for bug reports.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery time.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("schemex: internal error: %v", e.Value)
}

// recoverInternal converts a panic escaping the extraction machinery into an
// *InternalError assigned to the caller's named error return. Deferred at
// every facade entry point that runs the pipeline.
func recoverInternal(err *error) {
	if r := recover(); r != nil {
		*err = &InternalError{Value: r, Stack: debug.Stack()}
	}
}

// ExtractContext is Extract with cooperative cancellation and resource
// budgets: the pipeline stops at its next internal checkpoint once ctx is
// cancelled (returning ctx.Err()) or the Options.Limits budgets are violated
// (returning a *LimitError). Checkpoints only ever abort the whole run, so a
// completed extraction is bit-identical to Extract at any Parallelism.
func ExtractContext(ctx context.Context, g *Graph, opts Options) (res *Result, err error) {
	defer recoverInternal(&err)
	co, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	cr, err := core.ExtractContext(ctx, g.db, co)
	if err != nil {
		return nil, err
	}
	return &Result{res: cr}, nil
}

// SweepAnalysisContext is SweepAnalysis with cancellation and budgets, under
// the same contract as ExtractContext.
func SweepAnalysisContext(ctx context.Context, g *Graph, opts Options) (sw *Sweep, err error) {
	defer recoverInternal(&err)
	co, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	csw, err := core.SweepContext(ctx, g.db, co)
	if err != nil {
		return nil, err
	}
	return toSweep(csw), nil
}

func toSweep(csw *core.SweepResult) *Sweep {
	out := &Sweep{Suggested: csw.Knee()}
	for _, p := range csw.Points {
		out.Points = append(out.Points, SweepPoint{
			K:             p.K,
			Defect:        p.Defect,
			Excess:        p.Excess,
			Deficit:       p.Deficit,
			TotalDistance: p.TotalDistance,
			Unclassified:  p.Unclassified,
		})
	}
	return out
}

// Prepared is a compiled, reusable extraction context for one graph: an
// immutable CSR snapshot of the data (interned labels, dense positions,
// degree histograms) shared by every extraction stage, plus a memo of the
// most recent Stage 1 typing. Prepare once and call ExtractPrepared /
// SweepPrepared many times — with different K, distance, or recast options —
// to skip the per-call compilation; results are bit-identical to Extract /
// SweepAnalysis. A Prepared is safe for concurrent use, but the underlying
// graph must not be mutated while it is in use.
type Prepared struct {
	g    *Graph
	prep *core.Prepared
}

// Prepare compiles g into a reusable extraction context.
func Prepare(g *Graph) (*Prepared, error) {
	return PrepareContext(context.Background(), g)
}

// PrepareContext is Prepare with cooperative cancellation.
func PrepareContext(ctx context.Context, g *Graph) (p *Prepared, err error) {
	return PrepareOptions(ctx, g, Options{})
}

// PrepareOptions is PrepareContext honoring the preparation-relevant options:
// Parallelism (compile workers), Shards (snapshot layout), and MemBudget
// (resident-shard bytes; snapshots derived through Apply inherit the budget).
// All three are resource knobs only — extraction results are bit-identical
// at any setting.
func PrepareOptions(ctx context.Context, g *Graph, opts Options) (p *Prepared, err error) {
	defer recoverInternal(&err)
	cp, err := core.PrepareBudget(ctx, g.db, opts.Parallelism, opts.Shards, opts.MemBudget)
	if err != nil {
		return nil, err
	}
	return &Prepared{g: g, prep: cp}, nil
}

// Graph returns the graph the context was prepared from.
func (p *Prepared) Graph() *Graph { return p.g }

// ExtractPrepared is Extract over a prepared context: the snapshot
// compilation is skipped, and when the Stage-1-relevant options repeat
// (sorts, value labels, engine choice) the minimal perfect typing is reused
// as well. The result is bit-identical to Extract on the same graph.
func ExtractPrepared(p *Prepared, opts Options) (*Result, error) {
	return ExtractPreparedContext(context.Background(), p, opts)
}

// ExtractPreparedContext is ExtractPrepared with cancellation and budgets,
// under the same contract as ExtractContext.
func ExtractPreparedContext(ctx context.Context, p *Prepared, opts Options) (res *Result, err error) {
	defer recoverInternal(&err)
	co, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	cr, err := core.ExtractPreparedContext(ctx, p.prep, co)
	if err != nil {
		return nil, err
	}
	return &Result{res: cr}, nil
}

// SweepPrepared is SweepAnalysis over a prepared context, with the same
// reuse guarantees as ExtractPrepared.
func SweepPrepared(p *Prepared, opts Options) (*Sweep, error) {
	return SweepPreparedContext(context.Background(), p, opts)
}

// SweepPreparedContext is SweepPrepared with cancellation and budgets.
func SweepPreparedContext(ctx context.Context, p *Prepared, opts Options) (sw *Sweep, err error) {
	defer recoverInternal(&err)
	co, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	csw, err := core.SweepPreparedContext(ctx, p.prep, co)
	if err != nil {
		return nil, err
	}
	return toSweep(csw), nil
}

// ReadGraphLimits is ReadGraph with resource budgets: loading fails with a
// *LimitError as soon as the input exceeds the byte, object, or link caps.
func ReadGraphLimits(r io.Reader, lim Limits) (*Graph, error) {
	db, err := graph.ReadLimits(r, lim.loader())
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// ParseOEMLimits is ParseOEM with resource budgets (byte, object, link, and
// nesting-depth caps).
func ParseOEMLimits(r io.Reader, lim Limits) (*Graph, error) {
	db, err := graph.ParseOEMLimits(r, lim.loader())
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// ParseJSONLimits is ParseJSON with resource budgets (byte, object, link,
// and nesting-depth caps).
func ParseJSONLimits(r io.Reader, rootName string, lim Limits) (*Graph, error) {
	db, _, err := graph.FromJSONLimits(r, rootName, lim.loader())
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// TryLink is Link returning the constraint violation as an error instead of
// panicking: linking out of an atomic object is the one reachable violation.
func (g *Graph) TryLink(from, to, label string) error {
	return g.db.AddLink(g.db.Intern(from), g.db.Intern(to), label)
}

// TryAtom is Atom returning the constraint violation as an error instead of
// panicking: redeclaring an atom with a different value, or declaring an
// object with outgoing edges atomic.
func (g *Graph) TryAtom(name, value string) error {
	return g.db.SetAtomic(g.db.Intern(name), graph.Value{Sort: graph.SortString, Text: value})
}

// TryLinkAtom is LinkAtom returning constraint violations as errors instead
// of panicking. Like LinkAtom it names the fresh atomic object
// from+"."+label and infers the value's sort from its text.
func (g *Graph) TryLinkAtom(from, label, value string) error {
	name := from + "." + label
	id := g.db.Intern(name)
	if err := g.db.SetAtomic(id, graph.Value{Sort: graph.InferSort(value), Text: value}); err != nil {
		return err
	}
	return g.db.AddLink(g.db.Intern(from), id, label)
}
