package schemex_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"schemex"
)

func buildSample(t *testing.T) *schemex.Graph {
	t.Helper()
	g := schemex.NewGraph()
	g.Link("gates", "microsoft", "is-manager-of")
	g.Link("jobs", "apple", "is-manager-of")
	g.Link("microsoft", "gates", "is-managed-by")
	g.Link("apple", "jobs", "is-managed-by")
	g.LinkAtom("gates", "name", "Gates")
	g.LinkAtom("jobs", "name", "Jobs")
	g.LinkAtom("microsoft", "name", "Microsoft")
	g.LinkAtom("apple", "name", "Apple")
	return g
}

func TestExtractContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := schemex.ExtractContext(ctx, buildSample(t), schemex.Options{K: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestExtractContextCompletesLikeExtract(t *testing.T) {
	g := buildSample(t)
	plain, err := schemex.Extract(g, schemex.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := schemex.ExtractContext(context.Background(), g, schemex.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Schema() != ctxed.Schema() {
		t.Fatal("context run produced a different schema")
	}
}

func TestSweepAnalysisContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := schemex.SweepAnalysisContext(ctx, buildSample(t), schemex.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestOptionsLimits(t *testing.T) {
	g := buildSample(t)
	var le *schemex.LimitError
	_, err := schemex.Extract(g, schemex.Options{K: 2, Limits: schemex.Limits{MaxObjects: 2}})
	if !errors.As(err, &le) || le.Resource != "objects" {
		t.Fatalf("got %v, want objects *LimitError", err)
	}
	_, err = schemex.Extract(g, schemex.Options{K: 2, Limits: schemex.Limits{MaxWallTime: time.Nanosecond}})
	if !errors.As(err, &le) || le.Resource != "wall-time" {
		t.Fatalf("got %v, want wall-time *LimitError", err)
	}
}

func TestLimitedLoaders(t *testing.T) {
	var le *schemex.LimitError

	text := "link a b l\nlink b c l\n"
	if _, err := schemex.ReadGraphLimits(strings.NewReader(text), schemex.Limits{MaxBytes: 4}); !errors.As(err, &le) || le.Resource != "bytes" {
		t.Fatalf("text bytes cap: got %v", err)
	}
	if _, err := schemex.ReadGraphLimits(strings.NewReader(text), schemex.Limits{}); err != nil {
		t.Fatalf("uncapped load failed: %v", err)
	}

	deepOEM := strings.Repeat("{ a: ", 40) + "1" + strings.Repeat(" }", 40)
	if _, err := schemex.ParseOEMLimits(strings.NewReader(deepOEM), schemex.Limits{MaxDepth: 10}); !errors.As(err, &le) || le.Resource != "depth" {
		t.Fatalf("oem depth cap: got %v", err)
	}

	deepJSON := strings.Repeat(`{"a":`, 40) + "1" + strings.Repeat("}", 40)
	if _, err := schemex.ParseJSONLimits(strings.NewReader(deepJSON), "root", schemex.Limits{MaxDepth: 10}); !errors.As(err, &le) || le.Resource != "depth" {
		t.Fatalf("json depth cap: got %v", err)
	}
	if _, err := schemex.ParseJSONLimits(strings.NewReader(`{"a": [1,2,3]}`), "root", schemex.Limits{MaxObjects: 2}); !errors.As(err, &le) || le.Resource != "objects" {
		t.Fatalf("json objects cap: got %v", err)
	}
}

func TestTryBuildersReturnErrors(t *testing.T) {
	g := schemex.NewGraph()
	if err := g.TryLink("a", "b", "l"); err != nil {
		t.Fatalf("valid TryLink failed: %v", err)
	}
	if err := g.TryAtom("v", "hello"); err != nil {
		t.Fatalf("valid TryAtom failed: %v", err)
	}
	if err := g.TryAtom("v", "other"); err == nil {
		t.Fatal("conflicting TryAtom succeeded")
	}
	if err := g.TryLink("v", "b", "l"); err == nil {
		t.Fatal("TryLink out of an atomic object succeeded")
	}
	if err := g.TryLinkAtom("a", "name", "Ann"); err != nil {
		t.Fatalf("valid TryLinkAtom failed: %v", err)
	}
	if err := g.TryLinkAtom("a", "name", "Bob"); err == nil {
		t.Fatal("TryLinkAtom with a conflicting value succeeded")
	}
	// The panicking builders must still panic (compatibility), while Try*
	// covered the same violations as errors above.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Atom with conflicting value did not panic")
			}
		}()
		g.Atom("v", "other")
	}()
}

func TestInternalErrorRecovery(t *testing.T) {
	// A Graph built without NewGraph has a nil database: the extraction
	// machinery panics on it, and the facade must contain that panic.
	var g schemex.Graph
	_, err := schemex.Extract(&g, schemex.Options{})
	var ie *schemex.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want *InternalError", err)
	}
	if len(ie.Stack) == 0 || ie.Value == nil {
		t.Fatal("InternalError carries no panic value or stack")
	}
	if !strings.Contains(ie.Error(), "internal error") {
		t.Fatalf("unhelpful message %q", ie.Error())
	}

	if _, err := schemex.Check(&g, "type a = ->x[0]"); !errors.As(err, &ie) {
		t.Fatalf("Check: got %v, want *InternalError", err)
	}
	if _, err := schemex.SweepAnalysisContext(context.Background(), &g, schemex.Options{}); !errors.As(err, &ie) {
		t.Fatalf("SweepAnalysisContext: got %v, want *InternalError", err)
	}
}
