// Package schemex extracts schema from semistructured data, implementing
// Nestorov, Abiteboul and Motwani, "Extracting Schema from Semistructured
// Data" (SIGMOD 1998).
//
// Data is a labeled directed graph of objects (the link/atomic model); a
// schema is a monadic datalog typing program evaluated under greatest-
// fixpoint semantics. Extraction runs in three stages: the minimal perfect
// typing (one defect-free class per distinct recursive object shape), greedy
// clustering of similar types down to a target count, and recasting of the
// objects within the reduced types with a defect (excess + deficit)
// accounting.
//
// Quick start:
//
//	g := schemex.NewGraph()
//	g.Link("gates", "microsoft", "is-manager-of")
//	g.LinkAtom("gates", "name", "Gates")
//	g.LinkAtom("microsoft", "name", "Microsoft")
//	res, err := schemex.Extract(g, schemex.Options{})
//	fmt.Print(res.Schema())
//
// The subpackages under internal implement the substrates (graph store,
// datalog engine, fixpoint evaluators, clustering, defect measures,
// generators); this package is the stable surface.
package schemex

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"schemex/internal/cluster"
	"schemex/internal/core"
	"schemex/internal/defect"
	"schemex/internal/graph"
	"schemex/internal/query"
	"schemex/internal/recast"
	"schemex/internal/typing"
)

// Graph is a semistructured database: a labeled directed graph over complex
// and atomic objects. Use NewGraph, then Link/Atom/LinkAtom, or load one
// with ReadGraph/ParseOEM.
type Graph struct {
	db *graph.DB
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{db: graph.New()} }

// ReadGraph loads the line-oriented text format ("link from to label" /
// "atomic obj sort value").
func ReadGraph(r io.Reader) (*Graph, error) {
	db, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// ParseOEM loads an OEM-style nested-object document (see internal/graph's
// oem syntax: objects in braces, &name definitions, *name references).
func ParseOEM(r io.Reader) (*Graph, error) {
	db, err := graph.ParseOEM(r)
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// ParseOEMString is ParseOEM over a string.
func ParseOEMString(src string) (*Graph, error) {
	db, err := graph.ParseOEMString(src)
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// ParseJSON loads a JSON document into a fresh graph: objects become
// complex objects, members become labeled edges, arrays become repeated
// edges, scalars become sorted atomic values, and nulls are skipped (an
// absent optional attribute). rootName names the document root.
func ParseJSON(r io.Reader, rootName string) (*Graph, error) {
	db, _, err := graph.FromJSON(r, rootName)
	if err != nil {
		return nil, err
	}
	return &Graph{db: db}, nil
}

// AddJSON loads another JSON document into an existing graph (distinct
// root names required) and returns the root object's name.
func (g *Graph) AddJSON(r io.Reader, rootName string) (string, error) {
	id, err := g.db.FromJSON(r, rootName)
	if err != nil {
		return "", err
	}
	return g.db.Name(id), nil
}

// Link records an edge labeled label from object from to object to,
// creating the objects as needed. It panics if from is atomic.
func (g *Graph) Link(from, to, label string) { g.db.Link(from, to, label) }

// Atom declares an atomic object with a value. It panics if the object has
// outgoing edges or a conflicting value.
func (g *Graph) Atom(name, value string) { g.db.Atom(name, value) }

// LinkAtom attaches a fresh atomic attribute to from: it creates an atomic
// object named from+"."+label holding value and links it under label. The
// value's sort (string, int, float, bool) is inferred from its text. For
// several attributes with the same label on one object, use Atom+Link with
// distinct names.
func (g *Graph) LinkAtom(from, label, value string) {
	name := from + "." + label
	id := g.db.Intern(name)
	if err := g.db.SetAtomic(id, graph.Value{Sort: graph.InferSort(value), Text: value}); err != nil {
		panic(err)
	}
	g.db.Link(from, name, label)
}

// Write serializes the graph in the text format.
func (g *Graph) Write(w io.Writer) error { return g.db.Write(w) }

// WriteOEM serializes the graph as an OEM document (complex objects as
// named bindings, atomic values inlined). Complex structure and attribute
// values round-trip; atomic-object identity does not (the OEM syntax cannot
// name atomic objects) — use Write for lossless serialization.
func (g *Graph) WriteOEM(w io.Writer) error { return g.db.WriteOEM(w) }

// Stats summarizes the graph.
func (g *Graph) Stats() string { return g.db.Stats().String() }

// NumObjects returns the number of objects (complex + atomic).
func (g *Graph) NumObjects() int { return g.db.NumObjects() }

// NumLinks returns the number of link facts.
func (g *Graph) NumLinks() int { return g.db.NumLinks() }

// IsBipartite reports whether every edge points at an atomic object
// (relational or record-file data).
func (g *Graph) IsBipartite() bool { return g.db.IsBipartite() }

// DB exposes the underlying database for use with the internal packages
// (cmd tools, benchmarks). External users normally do not need it.
func (g *Graph) DB() *graph.DB { return g.db }

// Options configure extraction.
type Options struct {
	// K is the target number of types. K <= 0 chooses automatically from
	// the defect/size trade-off curve (the paper's sensitivity analysis).
	K int
	// Delta names the Stage 2 weighted distance function: "delta1" ...
	// "delta5" or "weighted-manhattan" (= delta2, the default, used in the
	// paper's experiments).
	Delta string
	// AllowEmpty lets clustering leave groups of objects unclassified (the
	// empty set type) when they fit nowhere cheaply.
	AllowEmpty bool
	// MultiRole decomposes conjunction types into simpler covering types
	// before clustering, giving objects multiple roles (§4.2).
	MultiRole bool
	// KeepHome assigns each object the cluster of its Stage 1 home type
	// during recasting even if some required links are missing (they are
	// counted as deficit). Defaults to true; set SkipHome to disable.
	SkipHome bool
	// MaxDistance leaves an object unclassified when its closest type is
	// farther than this Manhattan distance (negative or zero: no cutoff).
	MaxDistance int
	// UseSorts distinguishes atomic targets by value sort — ->age[0:int]
	// instead of ->age[0] — the Remark 2.1 extension. Objects whose
	// attribute values have different sorts then fall into different types.
	UseSorts bool
	// SeedSchema supplies a-priori known types in arrow notation (the §2
	// extension for integrating data with a known structure). Seed types
	// are pinned: clustering can merge discovered types into them but they
	// always survive into the final schema.
	SeedSchema string
	// ValueLabels lists labels whose atomic values participate in typing —
	// the paper's future-work value predicates. With ValueLabels: ["sex"],
	// objects whose sex value is "Male" and objects whose sex value is
	// "Female" fall into different types (->sex[0="Male"]).
	ValueLabels []string
	// UseBisimulation selects bisimulation partition refinement as the
	// Stage 1 engine. It refines the paper's extent equivalence (never
	// coarser, typically identical) and is usually much faster on large
	// recursive datasets. Incompatible with UseSorts/ValueLabels.
	UseBisimulation bool
	// Parallelism bounds the worker goroutines used inside each extraction
	// stage. <= 0 (the default) uses one worker per CPU; 1 runs the exact
	// serial code paths. The extracted schema, assignment, and defect are
	// bit-identical at any setting, so this is purely a resource knob.
	Parallelism int
	// Shards partitions the compiled snapshot's object space into
	// fixed-range shards: 0 sizes shards automatically from the graph, 1
	// forces the single flat block of the pre-sharding layout, k > 1
	// requests (at most) k shards. Sharding lets compilation, incremental
	// Apply, and the typing fixpoint work shard-parallel, and lets servers
	// lock mutations per shard. Results are bit-identical at any setting,
	// so this too is purely a resource knob.
	Shards int
	// Limits bounds the resources an extraction may consume (object/link/
	// type counts and wall-clock time; the loader-side caps apply to the
	// *Limits loader functions). Violations surface as *LimitError.
	Limits Limits
	// MaxAffectedFrac tunes incremental re-extraction after Prepared.Apply:
	// when a delta's affected region of the Stage 1 fixpoint exceeds this
	// fraction of the (types × objects) space, the evaluator falls back to
	// a full recompute. <= 0 uses the default (0.25). Purely a performance
	// knob — results are bit-identical on either path.
	MaxAffectedFrac float64
	// MaxDirtyTypesFrac tunes incremental Stages 2–3 the same way: when a
	// delta leaves more than this fraction of the Stage 1 types dirty, warm
	// clustering falls back to a full distance-matrix seeding, and the same
	// budget caps the fraction of objects the warm recast may reclassify.
	// <= 0 uses the default (0.25). Purely a performance knob — results are
	// bit-identical on either path.
	MaxDirtyTypesFrac float64
	// MemBudget bounds the bytes of compiled shard data held resident in
	// memory at once: shards past the budget spill to disk through a
	// checksummed per-shard codec and fault back in on access (LRU, shared
	// across a session's whole Apply lineage). 0 (the default) keeps
	// snapshots fully resident. Results are bit-identical at any budget, so
	// this is purely a resource knob; phases that pin their working set (the
	// typing fixpoint's shard-parallel rounds) may transiently overcommit.
	MemBudget int64
}

func (o Options) toCore() (core.Options, error) {
	co := core.Options{
		K:                 o.K,
		AllowEmpty:        o.AllowEmpty,
		MultiRole:         o.MultiRole,
		UseSorts:          o.UseSorts,
		ValueLabels:       o.ValueLabels,
		UseBisimulation:   o.UseBisimulation,
		Parallelism:       o.Parallelism,
		Shards:            o.Shards,
		Limits:            o.Limits.pipeline(),
		MaxAffectedFrac:   o.MaxAffectedFrac,
		MaxDirtyTypesFrac: o.MaxDirtyTypesFrac,
		MemBudget:         o.MemBudget,
	}
	if co.MaxDirtyTypesFrac < 0 {
		co.MaxDirtyTypesFrac = 0
	}
	if o.Delta != "" {
		d, ok := cluster.DeltaByName(o.Delta)
		if !ok {
			return co, fmt.Errorf("schemex: unknown distance function %q", o.Delta)
		}
		co.Delta = d
	}
	if o.SeedSchema != "" {
		seed, err := typing.Parse(o.SeedSchema)
		if err != nil {
			return co, fmt.Errorf("schemex: seed schema: %v", err)
		}
		co.Seed = seed
	}
	rc := recast.DefaultOptions()
	rc.KeepHome = !o.SkipHome
	if o.MaxDistance > 0 {
		rc.MaxDistance = o.MaxDistance
	}
	co.Recast = &rc
	return co, nil
}

// TypeInfo describes one extracted type.
type TypeInfo struct {
	Name string
	// Definition is the type's rule in arrow notation, e.g.
	// "type person = <-employs[firm] & ->name[0]".
	Definition string
	// Weight is the number of objects whose home the type is.
	Weight int
	// Size is the number of typed links in the definition.
	Size int
}

// Result is the outcome of Extract.
type Result struct {
	res *core.Result
}

// PerfectTypes returns the number of types in the minimal perfect typing
// (Stage 1) — the defect-free but typically large schema.
func (r *Result) PerfectTypes() int { return r.res.PerfectTypes }

// NumTypes returns the number of types in the final approximate typing.
func (r *Result) NumTypes() int { return r.res.Program.Len() }

// Schema returns the final typing program in arrow notation (parsable by
// ParseSchema).
func (r *Result) Schema() string { return r.res.Program.String() }

// PerfectSchema returns the Stage 1 minimal perfect typing program.
func (r *Result) PerfectSchema() string { return r.res.Stage1.Program.String() }

// Datalog returns the final typing program as monadic datalog rules over
// link/3 and atomic/2.
func (r *Result) Datalog() string {
	return typing.CompileDatalog(r.res.Program).String()
}

// Types lists the final types.
func (r *Result) Types() []TypeInfo {
	out := make([]TypeInfo, 0, r.res.Program.Len())
	for i, t := range r.res.Program.Types {
		out = append(out, TypeInfo{
			Name:       t.Name,
			Definition: r.res.Program.TypeString(i),
			Weight:     t.Weight,
			Size:       len(t.Links),
		})
	}
	return out
}

// Defect returns the total defect (excess + deficit) of the recast
// assignment.
func (r *Result) Defect() int { return r.res.Defect.Total() }

// Excess returns the number of link facts not justified by any type.
func (r *Result) Excess() int { return r.res.Defect.Excess }

// Deficit returns the number of facts that would have to be invented to make
// every assigned type derivable.
func (r *Result) Deficit() int { return r.res.Defect.Deficit }

// Unclassified returns the number of objects assigned no type.
func (r *Result) Unclassified() int { return r.res.Unclassified }

// AutoK returns the automatically chosen number of types (0 when Options.K
// was set explicitly).
func (r *Result) AutoK() int { return r.res.AutoK }

// TypesOf returns the names of the types assigned to the named object.
func (r *Result) TypesOf(object string) []string {
	id := r.res.Assignment.DB.Lookup(object)
	if id == graph.NoObject {
		return nil
	}
	var names []string
	for _, ti := range r.res.Assignment.Of(id) {
		names = append(names, r.res.Program.Types[ti].Name)
	}
	sort.Strings(names)
	return names
}

// Members returns the objects assigned to the named type, in name order.
func (r *Result) Members(typeName string) []string {
	ti := r.res.Program.IndexOf(typeName)
	if ti < 0 {
		return nil
	}
	var names []string
	db := r.res.Assignment.DB
	for o, ts := range r.res.Assignment.Types {
		for _, t := range ts {
			if t == ti {
				names = append(names, db.Name(o))
				break
			}
		}
	}
	sort.Strings(names)
	return names
}

// ClassifyNew types an object that was added to the graph after extraction
// (§6 of the paper): the object is assigned every type it satisfies
// completely under the extracted assignment, or the closest type by the
// Manhattan distance d; with maxDistance >= 0, objects farther than that
// from every type stay unclassified. The returned names are sorted.
//
// The object must already be in the graph the result was extracted from
// (add it with Link/LinkAtom first).
func (r *Result) ClassifyNew(object string, maxDistance int) []string {
	id := r.res.Assignment.DB.Lookup(object)
	if id == graph.NoObject || r.res.Assignment.DB.IsAtomic(id) {
		return nil
	}
	var names []string
	for _, ti := range recast.TypeNewObject(r.res.Assignment, id, maxDistance) {
		names = append(names, r.res.Program.Types[ti].Name)
	}
	sort.Strings(names)
	return names
}

// IncrementalInfo describes how much of one extraction was derived from
// retained session state rather than recomputed. Observability only: every
// combination yields bit-identical results.
type IncrementalInfo struct {
	// Stage1Warm / Stage2Warm / Stage3Warm report that the perfect typing
	// was maintained incrementally, the clustering matrix was seeded from
	// the previous extraction, and the recast reclassified only the delta's
	// dirty objects, respectively.
	Stage1Warm bool
	Stage2Warm bool
	Stage3Warm bool
	// FastPath reports that the whole result was replayed from an identical
	// earlier extraction (same options, nothing changed since).
	FastPath bool
	// DirtyTypes / DirtyObjects count the Stage 1 types reseeded by warm
	// clustering and the objects reclassified by the warm recast (-1 when
	// the corresponding stage ran cold).
	DirtyTypes   int
	DirtyObjects int
}

// Incremental reports which stages of this extraction ran incrementally.
func (r *Result) Incremental() IncrementalInfo {
	in := r.res.Incr
	return IncrementalInfo{
		Stage1Warm:   in.Stage1Warm,
		Stage2Warm:   in.Stage2Warm,
		Stage3Warm:   in.Stage3Warm,
		FastPath:     in.FastPath,
		DirtyTypes:   in.DirtyTypes,
		DirtyObjects: in.DirtyObjects,
	}
}

// StageTiming is the per-stage wall clock of one extraction. Stage2 includes
// the auto-K sweep when one ran; fast-path results carry only Total.
type StageTiming struct {
	Stage1, Stage2, Stage3, Total time.Duration
}

// Timing returns the wall-clock time this extraction spent per stage.
func (r *Result) Timing() StageTiming {
	t := r.res.Timing
	return StageTiming{Stage1: t.Stage1, Stage2: t.Stage2, Stage3: t.Stage3, Total: t.Total}
}

// Internal exposes the full pipeline result for advanced use (cmd tools,
// experiments).
func (r *Result) Internal() *core.Result { return r.res }

// DriftReport quantifies how far the graph has drifted from the extracted
// typing — the input to §6's open problem ("deciding how many new objects is
// too many"). NewObjects are complex objects added after extraction;
// IllFitting counts those farther than maxDistance from every type (with
// maxDistance < 0, only objects matching no type at any distance).
type DriftReport struct {
	NewObjects   int
	IllFitting   int
	TotalObjects int
}

// ShouldReextract is a simple policy over the report: re-extract when more
// than the given fraction of the objects are new, or any new object fits no
// type within the cutoff.
func (d DriftReport) ShouldReextract(maxNewFraction float64) bool {
	if d.TotalObjects == 0 {
		return false
	}
	if float64(d.NewObjects)/float64(d.TotalObjects) > maxNewFraction {
		return true
	}
	return d.IllFitting > 0
}

// Drift classifies every complex object added to the graph since this
// result was extracted and reports how well the old typing still covers
// the data.
func (r *Result) Drift(maxDistance int) DriftReport {
	a := r.res.Assignment
	var rep DriftReport
	for _, o := range a.DB.ComplexObjects() {
		rep.TotalObjects++
		if len(a.Of(o)) > 0 {
			continue // covered at extraction time
		}
		rep.NewObjects++
		if len(recast.TypeNewObject(a, o, maxDistance)) == 0 {
			rep.IllFitting++
		}
	}
	return rep
}

// CheckReport is the result of validating a graph against a schema.
type CheckReport struct {
	// Types maps each type name to the number of objects in its greatest-
	// fixpoint extent.
	Types map[string]int
	// Excess is the number of link facts justified by no type.
	Excess int
	// Unclassified is the number of complex objects in no type.
	Unclassified int
}

// Conforms reports whether the data fits the schema perfectly: no excess
// and every complex object classified.
func (c *CheckReport) Conforms() bool { return c.Excess == 0 && c.Unclassified == 0 }

// Check validates a graph against a schema written in the arrow notation
// (as produced by Result.Schema): it computes the schema's greatest
// fixpoint on the data and reports extent sizes, excess facts, and
// unclassified objects. This is the conformance direction of the paper's
// defect measure: under greatest-fixpoint semantics there can be excess but
// never deficit (§2).
func Check(g *Graph, schema string) (report *CheckReport, err error) {
	defer recoverInternal(&err)
	p, err := typing.Parse(schema)
	if err != nil {
		return nil, err
	}
	ext := typing.EvalGFP(p, g.db)
	report = &CheckReport{Types: make(map[string]int, len(p.Types))}
	for ti, t := range p.Types {
		report.Types[t.Name] = ext.Count(ti)
	}
	report.Excess = defect.Excess(p, g.db, ext.Member)
	for _, o := range g.db.ComplexObjects() {
		if len(ext.TypesOf(o)) == 0 {
			report.Unclassified++
		}
	}
	return report, nil
}

// Extract runs the three-stage extraction on g. Internal invariant panics
// are recovered into *InternalError; use ExtractContext to also get
// cancellation and wall-clock budgets.
func Extract(g *Graph, opts Options) (*Result, error) {
	return ExtractContext(context.Background(), g, opts)
}

// SweepPoint is one point of the sensitivity analysis: the defect and
// cumulative clustering distance of the best typing with K types.
type SweepPoint struct {
	K             int
	Defect        int
	Excess        int
	Deficit       int
	TotalDistance float64
	Unclassified  int
}

// Sweep holds the full defect-versus-number-of-types curve.
type Sweep struct {
	Points    []SweepPoint
	Suggested int // elbow of the defect curve
}

// SweepAnalysis computes the sensitivity curve of §7.2: it clusters from the
// perfect typing all the way down to one type, recasting and measuring the
// defect at each size.
func SweepAnalysis(g *Graph, opts Options) (*Sweep, error) {
	return SweepAnalysisContext(context.Background(), g, opts)
}

// FindPath returns the names of the complex objects that have an outgoing
// path matching the dotted path expression (labels, '*' for any single
// edge, '#' for any sequence), evaluated naively against the data.
func (g *Graph) FindPath(path string) ([]string, error) {
	p, err := query.ParsePath(path)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, o := range query.Find(g.db, p) {
		names = append(names, g.db.Name(o))
	}
	return names, nil
}

// PathValues returns the atomic values reachable from the named object
// along the path expression, sorted.
func (g *Graph) PathValues(from, path string) ([]string, error) {
	p, err := query.ParsePath(path)
	if err != nil {
		return nil, err
	}
	id := g.db.Lookup(from)
	if id == graph.NoObject {
		return nil, fmt.Errorf("schemex: unknown object %q", from)
	}
	return query.Values(g.db, []graph.ObjectID{id}, p), nil
}

// FindPath answers the same query as Graph.FindPath, but schema-guided: the
// path is first solved over the minimal perfect typing (which has zero
// excess, so no matches can be missed) and only objects of realizable types
// are inspected — the paper's §1 motivation that structure speeds up query
// processing.
func (r *Result) FindPath(path string) ([]string, error) {
	p, err := query.ParsePath(path)
	if err != nil {
		return nil, err
	}
	stage1 := r.res.Stage1
	guide := query.NewGuide(stage1.DB(), stage1.Program, stage1.Extent.Member)
	var names []string
	for _, o := range guide.Find(p) {
		names = append(names, stage1.DB().Name(o))
	}
	return names, nil
}

// ParseSchema parses a typing program in the arrow notation produced by
// Result.Schema, returning its canonical re-rendering. It is a convenience
// for validating hand-written schemas.
func ParseSchema(src string) (string, error) {
	p, err := typing.Parse(src)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}
