package schemex

import (
	"bytes"
	"strings"
	"testing"
)

// buildQuickstart builds the Figure 2 manager/firm graph via the public API.
func buildQuickstart() *Graph {
	g := NewGraph()
	g.Link("gates", "microsoft", "is-manager-of")
	g.Link("jobs", "apple", "is-manager-of")
	g.Link("microsoft", "gates", "is-managed-by")
	g.Link("apple", "jobs", "is-managed-by")
	g.LinkAtom("gates", "name", "Gates")
	g.LinkAtom("jobs", "name", "Jobs")
	g.LinkAtom("microsoft", "name", "Microsoft")
	g.LinkAtom("apple", "name", "Apple")
	return g
}

func TestQuickstartExtraction(t *testing.T) {
	g := buildQuickstart()
	res, err := Extract(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTypes() != 2 || res.PerfectTypes() != 2 {
		t.Fatalf("types = %d (perfect %d), want 2 and 2", res.NumTypes(), res.PerfectTypes())
	}
	if res.Defect() != 0 {
		t.Fatalf("defect = %d, want 0 on regular data", res.Defect())
	}
	// gates and jobs share a type; distinct from the firms'.
	tg, tj := res.TypesOf("gates"), res.TypesOf("jobs")
	if len(tg) == 0 || len(tj) == 0 || tg[0] != tj[0] {
		t.Fatalf("gates %v and jobs %v should share a type", tg, tj)
	}
	tm := res.TypesOf("microsoft")
	if len(tm) == 0 || tm[0] == tg[0] {
		t.Fatal("firms should have their own type")
	}
	// Members are queryable by type name.
	members := res.Members(tg[0])
	if len(members) != 2 || members[0] != "gates" || members[1] != "jobs" {
		t.Fatalf("members of %s = %v", tg[0], members)
	}
	// The schema re-parses.
	if _, err := ParseSchema(res.Schema()); err != nil {
		t.Fatalf("schema does not re-parse: %v\n%s", err, res.Schema())
	}
	// Datalog rendering mentions the EDB predicates.
	dl := res.Datalog()
	if !strings.Contains(dl, "link(") || !strings.Contains(dl, "atomic(") {
		t.Fatalf("datalog rendering suspicious:\n%s", dl)
	}
}

func TestTypeInfo(t *testing.T) {
	res, err := Extract(buildQuickstart(), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	infos := res.Types()
	if len(infos) != 2 {
		t.Fatalf("infos = %d, want 2", len(infos))
	}
	totalWeight := 0
	for _, ti := range infos {
		if ti.Name == "" || ti.Size == 0 || !strings.HasPrefix(ti.Definition, "type ") {
			t.Fatalf("bad TypeInfo: %+v", ti)
		}
		totalWeight += ti.Weight
	}
	if totalWeight != 4 {
		t.Fatalf("total weight = %d, want 4", totalWeight)
	}
}

func TestGraphSerializationRoundtrip(t *testing.T) {
	g := buildQuickstart()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumObjects() != g.NumObjects() || g2.NumLinks() != g.NumLinks() {
		t.Fatal("roundtrip lost data")
	}
}

func TestParseOEMPublicAPI(t *testing.T) {
	g, err := ParseOEMString(`
		&alice { name: "Alice", knows: *bob }
		&bob   { name: "Bob", knows: *alice }
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTypes() != 1 {
		t.Fatalf("types = %d, want 1", res.NumTypes())
	}
	if got := res.TypesOf("alice"); len(got) != 1 {
		t.Fatalf("alice types = %v", got)
	}
}

func TestSweepAnalysisPublicAPI(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		n := "r" + string(rune('0'+i))
		g.LinkAtom(n, "name", "x")
		if i%2 == 0 {
			g.LinkAtom(n, "extra", "y")
		}
	}
	sw, err := SweepAnalysis(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("sweep points = %d, want 2 (perfect has 2 types)", len(sw.Points))
	}
	if sw.Suggested < 1 || sw.Suggested > 2 {
		t.Fatalf("suggested = %d", sw.Suggested)
	}
}

func TestLinkAtomNaming(t *testing.T) {
	// Two objects may carry the same attribute label without clashing.
	g := NewGraph()
	g.LinkAtom("a", "name", "A")
	g.LinkAtom("b", "name", "B")
	if g.NumObjects() != 4 || g.NumLinks() != 2 {
		t.Fatalf("objects=%d links=%d, want 4 and 2", g.NumObjects(), g.NumLinks())
	}
	if !g.IsBipartite() {
		t.Fatal("attribute-only graph should be bipartite")
	}
}

func TestOptionsValidation(t *testing.T) {
	g := buildQuickstart()
	if _, err := Extract(g, Options{Delta: "frobnitz"}); err == nil {
		t.Fatal("unknown delta accepted")
	}
	for _, d := range []string{"delta1", "delta2", "delta3", "delta4", "delta5", "weighted-manhattan"} {
		if _, err := Extract(g, Options{K: 2, Delta: d}); err != nil {
			t.Fatalf("delta %s rejected: %v", d, err)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	if _, err := ParseSchema("type broken = ->x[nowhere]"); err == nil {
		t.Fatal("undefined target accepted")
	}
	out, err := ParseSchema("type ok = ->x[0] & <-y[ok]")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "type ok") {
		t.Fatalf("canonical rendering = %q", out)
	}
}

func TestAutoKExposed(t *testing.T) {
	res, err := Extract(buildQuickstart(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoK() != res.NumTypes() {
		t.Fatalf("AutoK %d != NumTypes %d", res.AutoK(), res.NumTypes())
	}
}
