// Delta sessions: the facade surface for extraction over evolving data. A
// Delta batches edits to a graph; applying one to a Prepared yields a new
// Prepared for the mutated data that shares everything the edits did not
// touch with its parent — the compiled snapshot's CSR rows and histograms,
// the graph's edge slices, and (through a warm-started Stage 1 fixpoint)
// most of the minimal perfect typing work. Parent sessions stay fully
// usable: Apply never mutates, it branches.
package schemex

import (
	"context"
	"io"

	"schemex/internal/compile"
	"schemex/internal/core"
	"schemex/internal/graph"
)

// Delta is an ordered batch of graph edits, addressed by object name so new
// objects can be introduced alongside references to existing ones. Build one
// with the fluent methods or parse the line format with ParseDelta, then
// hand it to Prepared.Apply. A Delta is independent of any particular graph
// until applied and may be applied to several.
type Delta struct {
	d graph.Delta
}

// NewDelta returns an empty delta.
func NewDelta() *Delta { return &Delta{} }

// Link records adding the fact link(from, to, label). Unknown names are
// created as complex objects at apply time.
func (d *Delta) Link(from, to, label string) *Delta {
	d.d.AddLink(from, to, label)
	return d
}

// Unlink records removing link(from, to, label). Applying a delta that
// removes a missing link is an error.
func (d *Delta) Unlink(from, to, label string) *Delta {
	d.d.RemoveLink(from, to, label)
	return d
}

// Atom records declaring name as an atomic object holding value (sort
// inferred from the text, as TryLinkAtom does). Applying fails if the object
// has outgoing edges or a different value.
func (d *Delta) Atom(name, value string) *Delta {
	d.d.AddAtomic(name, graph.Value{Sort: graph.InferSort(value), Text: value})
	return d
}

// Remove records detaching the named object: all incident links and any
// atomic value are removed; the object survives as an isolated complex
// object (object identities are never reclaimed).
func (d *Delta) Remove(name string) *Delta {
	d.d.RemoveObject(name)
	return d
}

// Len reports the number of recorded edits.
func (d *Delta) Len() int { return d.d.Len() }

// String renders the delta in the line format ParseDelta reads.
func (d *Delta) String() string { return d.d.String() }

// ParseDelta reads the line-oriented delta format:
//
//	link <from> <to> <label>
//	unlink <from> <to> <label>
//	atomic <obj> <sort> <value>
//	remove <obj>
//
// Fields follow the graph text format's quoting rules; # starts a comment.
func ParseDelta(r io.Reader) (*Delta, error) {
	gd, err := graph.ParseDelta(r)
	if err != nil {
		return nil, err
	}
	return &Delta{d: *gd}, nil
}

// MergeDeltas concatenates deltas into one, preserving edit order. Applying
// the merged delta is equivalent to applying the originals in sequence,
// except that a failing edit aborts the whole merged application where
// sequential application would keep the effects of the preceding deltas.
func MergeDeltas(ds ...*Delta) *Delta {
	gds := make([]*graph.Delta, len(ds))
	for i, d := range ds {
		if d != nil {
			gds[i] = &d.d
		}
	}
	return &Delta{d: *graph.MergeDeltas(gds...)}
}

// ApplyInfo reports how a delta session was derived.
type ApplyInfo struct {
	// Incremental reports that the compiled snapshot was rebuilt with
	// structural sharing. False means the delta changed the label universe
	// or flipped an object between atomic and complex, forcing a full
	// recompile of the mutated graph — results are identical either way.
	Incremental bool
	// TouchedObjects counts the objects whose incident edges or atomic
	// value changed (including created objects); NewObjects counts the
	// created ones.
	TouchedObjects int
	NewObjects     int
}

// Apply produces the session for p's graph with d applied. p itself, its
// graph, and every result extracted from it remain valid and unchanged; the
// child shares all untouched structure with p and warm-starts its Stage 1
// typing from p's, so extracting after a small delta costs work proportional
// to the delta's neighborhood. Extractions from the child are bit-identical
// to loading the mutated graph from scratch.
func (p *Prepared) Apply(d *Delta) (*Prepared, *ApplyInfo, error) {
	return p.ApplyContext(context.Background(), d)
}

// ApplyContext is Apply with cooperative cancellation.
func (p *Prepared) ApplyContext(ctx context.Context, d *Delta) (np *Prepared, info *ApplyInfo, err error) {
	defer recoverInternal(&err)
	cp, ci, err := p.prep.ApplyContext(ctx, &d.d, 0)
	if err != nil {
		return nil, nil, err
	}
	return &Prepared{g: &Graph{db: cp.DB()}, prep: cp}, &ApplyInfo{
		Incremental:    ci.Shared,
		TouchedObjects: len(ci.Touched),
		NewObjects:     ci.NewObjects,
	}, nil
}

// ApplyBatch applies a burst of deltas as one pipeline pass: the batch is
// merged (and, where provably equivalent, coalesced — cancelling link/unlink
// pairs and Remove-subsumed edits dropped) into a single delta, compiled
// with one incremental Apply, and the child's Version advances by len(ds) so
// the result is indistinguishable from sequential Apply calls — bit-identical
// state at a fraction of the cost. If any delta in the batch would fail, the
// whole batch fails and p is unchanged; callers that need to know which
// delta failed fall back to applying them one at a time.
func (p *Prepared) ApplyBatch(ds ...*Delta) (*Prepared, *ApplyInfo, error) {
	return p.ApplyBatchContext(context.Background(), ds...)
}

// ApplyBatchContext is ApplyBatch with cooperative cancellation.
func (p *Prepared) ApplyBatchContext(ctx context.Context, ds ...*Delta) (np *Prepared, info *ApplyInfo, err error) {
	defer recoverInternal(&err)
	gds := make([]*graph.Delta, 0, len(ds))
	for _, d := range ds {
		if d != nil {
			gds = append(gds, &d.d)
		}
	}
	cp, ci, err := p.prep.ApplyBatchContext(ctx, gds, 0)
	if err != nil {
		return nil, nil, err
	}
	return &Prepared{g: &Graph{db: cp.DB()}, prep: cp}, &ApplyInfo{
		Incremental:    ci.Shared,
		TouchedObjects: len(ci.Touched),
		NewObjects:     ci.NewObjects,
	}, nil
}

// Version counts the deltas applied since the session's root Prepare: 0 for
// a freshly prepared context, parent+1 after each Apply.
func (p *Prepared) Version() uint64 { return p.prep.Version() }

// NumShards reports how many fixed-range object shards the session's
// compiled snapshot is partitioned into (see Options.Shards). Sessions
// derived through Apply inherit the layout.
func (p *Prepared) NumShards() int { return p.prep.NumShards() }

// DeltaShards maps a delta's object footprint onto the snapshot's shards:
// the ascending shard indexes holding an object the delta references
// (RemoveObject footprints include the object's neighbours). exclusive=true
// means the footprint cannot be confined — the delta names an object this
// state does not know, so applying it may touch the top of the ID space and
// grow new shards. Serving layers use the footprint to admit concurrent
// mutations under per-shard locks; it is advisory, and Apply itself never
// depends on it.
func (p *Prepared) DeltaShards(d *Delta) (shards []int, exclusive bool) {
	return p.prep.DeltaShards(&d.d)
}

// SetBaseVersion rebases the session version counter, the hook durable
// recovery uses: a snapshot spilled at version V is re-prepared (version 0),
// rebased to V, and the write-ahead log's suffix is replayed on top so the
// rehydrated session reports the same version the crashed process
// acknowledged. Call it only on a freshly prepared, unshared context.
func (p *Prepared) SetBaseVersion(v uint64) { p.prep.SetBaseVersion(v) }

// IncrStats is a point-in-time snapshot of the incremental-versus-fallback
// counters of a session lineage: how many extractions warm-started each stage
// versus recomputing it, and how many replayed a whole retained result.
type IncrStats struct {
	Stage2Warm, Stage2Full uint64
	Stage3Warm, Stage3Full uint64
	FastPath               uint64
	// Batches / BatchedDeltas count ApplyBatch passes and the deltas they
	// covered; CoalescedOps counts edits dropped by coalescing before
	// compilation.
	Batches, BatchedDeltas uint64
	CoalescedOps           uint64
}

// IncrStats reports the incremental-extraction counters accumulated across
// this session's whole lineage (the root Prepare and every session derived
// from it through Apply share one set).
func (p *Prepared) IncrStats() IncrStats {
	s := p.prep.Stats()
	return IncrStats{
		Stage2Warm: s.Stage2Warm, Stage2Full: s.Stage2Full,
		Stage3Warm: s.Stage3Warm, Stage3Full: s.Stage3Full,
		FastPath: s.FastPath,
		Batches:  s.Batches, BatchedDeltas: s.BatchedDeltas,
		CoalescedOps: s.CoalescedOps,
	}
}

// EncodeSnapshotCore serializes the session's compiled snapshot minus its
// shard CSR blocks — label universe, global tables, degree histograms, shard
// geometry — in a versioned checksummed format. Together with one
// EncodeShard blob per shard it is a complete shard-granular spill of the
// snapshot; PrepareSpilled reads it back, loading shards lazily.
func (p *Prepared) EncodeSnapshotCore() []byte { return p.prep.EncodeSnapshotCore() }

// EncodeShard serializes shard si of the session's compiled snapshot in the
// versioned checksummed shard format (faulting it in if it is spilled).
func (p *Prepared) EncodeShard(si int) []byte { return p.prep.EncodeShard(si) }

// PrepareSpilled reconstructs a session from a shard-granular spill: the
// EncodeSnapshotCore blob and one file per shard holding that shard's
// EncodeShard bytes, in shard order. Shard files are not read here — each
// faults in, checksum-verified, on first access — so rehydration costs the
// core blob plus only the shards the next request touches. g must hold the
// same graph the spilled snapshot was compiled from; opts contributes
// MemBudget (corrupt or missing shard files surface as *InternalError at
// access time, or as an immediate error here for a malformed core).
func PrepareSpilled(ctx context.Context, g *Graph, snapCore []byte, shardFiles []string, opts Options) (p *Prepared, err error) {
	defer recoverInternal(&err)
	cp, err := core.PrepareSpilledContext(ctx, g.db, snapCore, shardFiles, opts.MemBudget)
	if err != nil {
		return nil, err
	}
	return &Prepared{g: g, prep: cp}, nil
}

// ResidencyStats is a point-in-time snapshot of the process-wide shard
// residency counters: shards faulted in from spill files, shards evicted to
// meet a memory budget, and pin acquisitions by phases that hold their
// working set resident.
type ResidencyStats struct {
	ShardFaults    uint64
	ShardEvictions uint64
	ShardPins      uint64
}

// ReadResidencyStats reports the process-wide shard residency counters,
// aggregated over every memory-budgeted snapshot lineage in the process.
func ReadResidencyStats() ResidencyStats {
	s := compile.ResidencyStats()
	return ResidencyStats{ShardFaults: s.Faults, ShardEvictions: s.Evictions, ShardPins: s.Pins}
}
